"""Servable kernels: the work a :class:`~repro.serve.server.TaskService`
job can request.

A served job names a *kernel* plus plain-JSON arguments; the kernel
turns those into a batch of significance-annotated tasks (the payload of
one ``Scheduler.spawn_many`` call), recombines the per-task results into
the job's output, and scores that output against a runtime-free accurate
reference.  Kernels live in the ``"servable"`` registry family, so jobs
crossing the wire carry nothing but strings and JSON — the same
serializability contract as :class:`~repro.config.RuntimeConfig`.

Five built-ins cover the paper's two approximation modes:

* ``sobel`` — row tasks over a synthetic image with the paper's
  Listing 1 significance pattern; approximated rows run the cheap
  stencil (**A** mode).  Dominant cost, visual quality metric.
* ``mc-pi`` — Monte-Carlo π estimation in sample blocks; approximated
  blocks are *dropped* entirely (**D** mode: no ``approxfun``), so a
  degraded tenant sheds their compute instead of shrinking it.
* ``jacobi`` — block-Jacobi solve of a diagonally dominant system:
  each task solves one diagonal block of the matrix, dropped blocks
  leave their rows at zero (**D** mode — the served cousin of the
  benchmark's "drop the upper right and lower left areas").
* ``kmeans`` — one k-means refinement step over point chunks; dropped
  chunks simply don't vote, and the centroid update renormalizes over
  the chunks that ran (**D** mode).
* ``dct`` — JPEG forward DCT in zigzag-band tasks, significance
  decreasing with spatial frequency; a dropped band leaves its
  coefficients zero, like truncating the zigzag scan (**D** mode).

Task bodies are module-level functions over picklable data, so every
execution backend (simulated / threaded / process pool) can serve them.
"""

from __future__ import annotations

import abc
import hashlib
import json
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from ..kernels.dct import (
    BLOCK,
    N_BANDS,
    band_coefficients,
    band_cost,
    band_significance,
    blockize,
    dct_band_value,
    reconstruct,
)
from ..kernels.jacobi import (
    OPS_PER_ENTRY,
    JacobiProblem,
    jacobi_reference,
)
from ..kernels.kmeans import OPS_PER_DIM, KmeansProblem
from ..kernels.sobel import (
    sobel_row_accurate,
    sobel_row_approx,
    sobel_row_cost,
    sobel_row_significance,
    sobel_row_value,
    sobel_row_value_approx,
)
from ..quality.images import synthetic_image
from ..quality.metrics import inverse_psnr, relative_error
from ..registry import register, registry_for, resolve
from ..runtime.errors import ConfigError
from ..runtime.task import TaskCost

__all__ = [
    "TaskPlan",
    "ServableKernel",
    "AnytimeServable",
    "SobelServable",
    "MonteCarloPiServable",
    "JacobiServable",
    "KmeansServable",
    "DctServable",
    "FluidanimateServable",
    "get_servable",
    "servable_names",
]


@dataclass(frozen=True)
class TaskPlan:
    """One job's task batch, shaped for ``Scheduler.spawn_many``."""

    fn: Callable[..., Any]
    args_list: list[tuple]
    significance: Any = 1.0
    approxfun: Callable[..., Any] | None = None
    cost: Any = None

    @property
    def n_tasks(self) -> int:
        return len(self.args_list)


class ServableKernel(abc.ABC):
    """One kind of servable work: plan tasks, combine, judge quality."""

    #: Registry name (also the cache key's first component).
    name: str = "?"

    # -- identity --------------------------------------------------------
    @abc.abstractmethod
    def canonical_args(self, args: dict | None) -> dict:
        """Validated arguments with defaults filled in (plain JSON)."""

    def digest(self, args: dict | None) -> str:
        """Stable content key of one argument set (cache identity)."""
        canon = self.canonical_args(args)
        blob = json.dumps(canon, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()[:16]

    # -- execution -------------------------------------------------------
    @abc.abstractmethod
    def plan(self, args: dict | None) -> TaskPlan:
        """The job's task batch (fresh per call; tasks own their data)."""

    @abc.abstractmethod
    def combine(self, args: dict | None, results: list) -> Any:
        """Recombine per-task results (in ``args_list`` order) into the
        job output.  Dropped tasks contribute ``None``."""

    # -- quality ---------------------------------------------------------
    @abc.abstractmethod
    def reference(self, args: dict | None) -> Any:
        """Fully accurate output, computed without any runtime."""

    @abc.abstractmethod
    def quality(self, reference: Any, output: Any) -> float:
        """Lower-is-better degradation of ``output`` vs the reference."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ServableKernel {self.name}>"


class AnytimeServable(ServableKernel):
    """A servable kernel that can also *refine* an answer round by
    round — the anytime/iterative job shape.

    The batch surface (:meth:`~ServableKernel.plan` /
    :meth:`~ServableKernel.combine`) stays untouched; the anytime
    surface models one refinement round over a mutable solution state:

    * :meth:`anytime_state` — the initial solution,
    * :meth:`anytime_plan` — one round's task batch against it,
    * :meth:`anytime_update` — fold the round's results back in
      (dropped tasks contribute ``None`` and leave their slice stale —
      that is what makes a degraded round *graceful*),
    * :meth:`anytime_reference` — the **converged** answer the
      per-round quality curve is scored against (a different artifact
      than the one-shot batch reference).

    :meth:`~repro.serve.server.TaskService.submit_anytime` drives the
    loop and reports improving quality after every round.
    """

    @abc.abstractmethod
    def anytime_state(self, args: dict | None) -> Any:
        """The initial solution state of one job."""

    @abc.abstractmethod
    def anytime_plan(self, args: dict | None, state: Any) -> TaskPlan:
        """One refinement round's task batch against ``state``."""

    @abc.abstractmethod
    def anytime_update(
        self, args: dict | None, state: Any, results: list
    ) -> Any:
        """The next state after folding one round's results in."""

    def anytime_output(self, args: dict | None, state: Any) -> Any:
        """The answer a client takes from ``state`` (default: as is)."""
        return state

    @abc.abstractmethod
    def anytime_reference(self, args: dict | None) -> Any:
        """The converged answer (quality baseline for every round)."""


def _int_arg(args: dict, key: str, default: int, lo: int, hi: int) -> int:
    value = args.get(key, default)
    if not isinstance(value, int) or isinstance(value, bool):
        raise ConfigError(f"servable arg {key!r} must be an int")
    if not lo <= value <= hi:
        raise ConfigError(
            f"servable arg {key!r}={value} outside [{lo}, {hi}]"
        )
    return value


# ----------------------------------------------------------------------
# Sobel (approximate-task mode)
# ----------------------------------------------------------------------
# The value-returning row bodies moved next to the stencils in
# repro.kernels.sobel (the compile tier specializes them there too);
# the old private names stay importable.
_sobel_row_value = sobel_row_value
_sobel_row_value_approx = sobel_row_value_approx


@register("servable", "sobel")
class SobelServable(ServableKernel):
    """Row-parallel Sobel filtering of a synthetic image.

    Args: ``size`` (image side, default 64), ``seed`` (default 2015).
    """

    name = "sobel"

    def canonical_args(self, args: dict | None) -> dict:
        args = args or {}
        return {
            "size": _int_arg(args, "size", 64, 8, 4096),
            "seed": _int_arg(args, "seed", 2015, 0, 2**31),
        }

    def _image(self, args: dict) -> np.ndarray:
        return synthetic_image(args["size"], args["size"], args["seed"])

    def plan(self, args: dict | None) -> TaskPlan:
        canon = self.canonical_args(args)
        img = self._image(canon)
        rows = range(1, canon["size"] - 1)
        return TaskPlan(
            fn=sobel_row_value,
            # Three-row windows, not the whole image: views share the
            # base array in-process and pickle as O(width) payloads on
            # the process backend.
            args_list=[(img[i - 1 : i + 2], i) for i in rows],
            significance=lambda window, i: sobel_row_significance(i),
            approxfun=sobel_row_value_approx,
            cost=sobel_row_cost(canon["size"]),
        )

    def combine(self, args: dict | None, results: list) -> np.ndarray:
        canon = self.canonical_args(args)
        size = canon["size"]
        out = np.zeros((size, size), dtype=np.uint8)
        for i, row in zip(range(1, size - 1), results):
            if row is not None:
                out[i] = row
        return out

    def reference(self, args: dict | None) -> np.ndarray:
        canon = self.canonical_args(args)
        img = self._image(canon)
        out = np.zeros_like(img)
        for i in range(1, canon["size"] - 1):
            sobel_row_accurate(out, img, i)
        return out

    def quality(self, reference: Any, output: Any) -> float:
        return inverse_psnr(reference, output)


# ----------------------------------------------------------------------
# Monte-Carlo π (drop mode)
# ----------------------------------------------------------------------
#: Abstract work units per Monte-Carlo sample (draw + square + compare).
_MC_OPS_PER_SAMPLE = 8.0


def _pi_block(seed: int, n: int) -> tuple[int, int]:
    """Count unit-circle hits among ``n`` deterministic 2-D samples."""
    rng = np.random.default_rng(seed)
    pts = rng.random((n, 2))
    hits = int(np.count_nonzero((pts * pts).sum(axis=1) <= 1.0))
    return hits, n


@register("servable", "mc-pi", "pi")
class MonteCarloPiServable(ServableKernel):
    """Monte-Carlo π in droppable sample blocks.

    Args: ``blocks`` (tasks, default 16), ``samples`` (per block,
    default 2000), ``seed``.  No ``approxfun``: a block selected for
    approximation is dropped, and :meth:`combine` renormalizes over the
    blocks that actually ran (the paper's **D** mode).
    """

    name = "mc-pi"

    def canonical_args(self, args: dict | None) -> dict:
        args = args or {}
        return {
            "blocks": _int_arg(args, "blocks", 16, 1, 4096),
            "samples": _int_arg(args, "samples", 2000, 16, 10**7),
            "seed": _int_arg(args, "seed", 2015, 0, 2**31),
        }

    def plan(self, args: dict | None) -> TaskPlan:
        canon = self.canonical_args(args)
        seed, n = canon["seed"], canon["samples"]
        return TaskPlan(
            fn=_pi_block,
            args_list=[(seed + b, n) for b in range(canon["blocks"])],
            # Listing-1-style spread in (0, 1): never forces a decision.
            significance=lambda s, n: ((s % 9) + 1) / 10.0,
            approxfun=None,
            cost=TaskCost(accurate=n * _MC_OPS_PER_SAMPLE),
        )

    def combine(self, args: dict | None, results: list) -> float:
        hits = total = 0
        for block in results:
            if block is not None:
                h, n = block
                hits += h
                total += n
        return 4.0 * hits / total if total else 0.0

    def reference(self, args: dict | None) -> float:
        canon = self.canonical_args(args)
        return self.combine(
            args,
            [
                _pi_block(canon["seed"] + b, canon["samples"])
                for b in range(canon["blocks"])
            ],
        )

    def quality(self, reference: Any, output: Any) -> float:
        return relative_error(
            np.asarray([reference]), np.asarray([output])
        )


# ----------------------------------------------------------------------
# Jacobi (drop mode)
# ----------------------------------------------------------------------
#: Nominal Jacobi sweeps a diagonal-block solve needs at the native
#: tolerance (cost model only — the body iterates to convergence).
_JACOBI_BLOCK_SWEEPS = 12.0


def _jacobi_sweep_chunk(
    a_rows: np.ndarray,
    b_chunk: np.ndarray,
    diag_chunk: np.ndarray,
    x: np.ndarray,
    lo: int,
    hi: int,
) -> np.ndarray:
    """One Jacobi sweep for rows ``lo:hi`` against the full iterate.

    The anytime round body: ``x'[i] = (b[i] - sum_{j!=i} a[i,j] x[j])
    / a[i,i]``.  Strict diagonal dominance makes the sweep a
    contraction, so every round provably improves the answer — the
    property the anytime quality curve rides on.
    """
    sigma = a_rows @ x - diag_chunk * x[lo:hi]
    return (b_chunk - sigma) / diag_chunk


def _jacobi_block(a_block: np.ndarray, b_chunk: np.ndarray, idx: int):
    """Solve one diagonal block ``a_block x = b_chunk`` accurately.

    ``a_block`` is strictly diagonally dominant (its diagonal dominates
    the *full* matrix row, so a fortiori the block row), which is what
    makes dropping the off-block couplings — the served analogue of the
    benchmark's "upper right and lower left areas" — graceful rather
    than catastrophic.  ``idx`` rides along for the significance clause.
    """
    return jacobi_reference(JacobiProblem(a=a_block, b=b_chunk))


@register("servable", "jacobi")
class JacobiServable(AnytimeServable):
    """Block-Jacobi solve of a diagonally dominant system, in
    droppable diagonal-block tasks.

    Args: ``n`` (system size, default 256), ``chunk`` (rows per block,
    default 32), ``seed``.  No ``approxfun``: a dropped block leaves
    its rows of the solution at zero, and diagonal dominance bounds the
    damage (**D** mode).  Each task owns a copied ``chunk x chunk``
    block, so process backends marshal O(chunk^2), not O(n^2).

    Anytime surface: the state is the solution iterate ``x`` (zeros to
    start); one round is one full Jacobi sweep in row-chunk tasks, and
    a dropped chunk leaves its rows at the previous iterate — stale,
    not wrong.  The reference is the converged solve.
    """

    name = "jacobi"

    def canonical_args(self, args: dict | None) -> dict:
        args = args or {}
        canon = {
            "n": _int_arg(args, "n", 256, 16, 4096),
            "chunk": _int_arg(args, "chunk", 32, 4, 1024),
            "seed": _int_arg(args, "seed", 2015, 0, 2**31),
        }
        if canon["chunk"] > canon["n"]:
            raise ConfigError(
                f"servable arg 'chunk'={canon['chunk']} exceeds "
                f"n={canon['n']}"
            )
        return canon

    def _chunks(self, canon: dict) -> list[tuple[int, int]]:
        n, chunk = canon["n"], canon["chunk"]
        return [(lo, min(lo + chunk, n)) for lo in range(0, n, chunk)]

    def plan(self, args: dict | None) -> TaskPlan:
        canon = self.canonical_args(args)
        problem = JacobiProblem.generate(canon["n"], canon["seed"])
        chunk = canon["chunk"]
        return TaskPlan(
            fn=_jacobi_block,
            args_list=[
                (
                    problem.a[lo:hi, lo:hi].copy(),
                    problem.b[lo:hi].copy(),
                    i,
                )
                for i, (lo, hi) in enumerate(self._chunks(canon))
            ],
            # Listing-1-style spread in (0, 1): never forces a decision.
            significance=lambda a_block, b_chunk, idx: (
                ((idx % 9) + 1) / 10.0
            ),
            approxfun=None,
            cost=TaskCost(
                accurate=chunk * chunk * OPS_PER_ENTRY
                * _JACOBI_BLOCK_SWEEPS
            ),
        )

    def combine(self, args: dict | None, results: list) -> np.ndarray:
        canon = self.canonical_args(args)
        x = np.zeros(canon["n"])
        for (lo, hi), x_chunk in zip(self._chunks(canon), results):
            if x_chunk is not None:
                x[lo:hi] = x_chunk
        return x

    def reference(self, args: dict | None) -> np.ndarray:
        canon = self.canonical_args(args)
        problem = JacobiProblem.generate(canon["n"], canon["seed"])
        return self.combine(
            args,
            [
                _jacobi_block(
                    problem.a[lo:hi, lo:hi], problem.b[lo:hi], i
                )
                for i, (lo, hi) in enumerate(self._chunks(canon))
            ],
        )

    def quality(self, reference: Any, output: Any) -> float:
        return relative_error(reference, output)

    # -- anytime surface -------------------------------------------------
    def anytime_state(self, args: dict | None) -> np.ndarray:
        canon = self.canonical_args(args)
        return np.zeros(canon["n"])

    def anytime_plan(
        self, args: dict | None, state: np.ndarray
    ) -> TaskPlan:
        canon = self.canonical_args(args)
        problem = JacobiProblem.generate(canon["n"], canon["seed"])
        diag = np.diag(problem.a)
        chunk = canon["chunk"]
        return TaskPlan(
            fn=_jacobi_sweep_chunk,
            args_list=[
                (
                    problem.a[lo:hi, :].copy(),
                    problem.b[lo:hi].copy(),
                    diag[lo:hi].copy(),
                    state,
                    lo,
                    hi,
                )
                for lo, hi in self._chunks(canon)
            ],
            # Listing-1-style spread in (0, 1): never forces a decision.
            significance=lambda a_rows, b_chunk, diag_chunk, x, lo, hi: (
                ((lo // chunk % 9) + 1) / 10.0
            ),
            approxfun=None,
            cost=TaskCost(
                accurate=chunk * canon["n"] * OPS_PER_ENTRY
            ),
        )

    def anytime_update(
        self, args: dict | None, state: np.ndarray, results: list
    ) -> np.ndarray:
        canon = self.canonical_args(args)
        x = state.copy()
        for (lo, hi), x_chunk in zip(self._chunks(canon), results):
            if x_chunk is not None:
                x[lo:hi] = x_chunk
        return x

    def anytime_reference(self, args: dict | None) -> np.ndarray:
        # The *exact* solution, not the tolerance-truncated iterative
        # solve: the anytime iterate runs the same sweeps as the
        # iterative reference and would pass straight through it,
        # breaking the monotone quality curve at the tail.
        canon = self.canonical_args(args)
        problem = JacobiProblem.generate(canon["n"], canon["seed"])
        return np.linalg.solve(problem.a, problem.b)


# ----------------------------------------------------------------------
# K-means (drop mode)
# ----------------------------------------------------------------------
def _kmeans_chunk(points_chunk: np.ndarray, centroids: np.ndarray, idx: int):
    """Assign one point chunk to the nearest centroids; return the
    partial sums and counts of the centroid update (``idx`` rides along
    for the significance clause)."""
    diff = points_chunk[:, None, :] - centroids[None, :, :]
    dist2 = np.einsum("pkd,pkd->pk", diff, diff)
    labels = np.argmin(dist2, axis=1)
    sums = np.zeros_like(centroids)
    counts = np.zeros(len(centroids), dtype=np.int64)
    np.add.at(sums, labels, points_chunk)
    np.add.at(counts, labels, 1)
    return sums, counts


@register("servable", "kmeans")
class KmeansServable(AnytimeServable):
    """One k-means refinement step over droppable point chunks.

    Anytime surface: the state is the centroid set (maxmin seeds to
    start); one round is one Lloyd step in point-chunk tasks, and a
    dropped chunk simply doesn't vote that round.  The reference is
    converged Lloyd, so the per-round quality curve tracks distance to
    the fixed point.

    Args: ``points`` (default 1024), ``k`` (default 8), ``dims``
    (default 8), ``chunk`` (points per task, default 128), ``seed``.
    No ``approxfun``: a dropped chunk simply doesn't vote, and
    :meth:`combine` renormalizes the centroid update over the chunks
    that ran (**D** mode); a centroid left with no votes keeps its
    deterministic maxmin seed position.
    """

    name = "kmeans"

    def canonical_args(self, args: dict | None) -> dict:
        args = args or {}
        canon = {
            "points": _int_arg(args, "points", 1024, 64, 65536),
            "k": _int_arg(args, "k", 8, 2, 64),
            "dims": _int_arg(args, "dims", 8, 2, 64),
            "chunk": _int_arg(args, "chunk", 128, 16, 8192),
            "seed": _int_arg(args, "seed", 2015, 0, 2**31),
        }
        if canon["k"] > canon["points"]:
            raise ConfigError(
                f"servable arg 'k'={canon['k']} exceeds "
                f"points={canon['points']}"
            )
        return canon

    def _problem(self, canon: dict) -> KmeansProblem:
        rng = np.random.default_rng(canon["seed"])
        k, dims = canon["k"], canon["dims"]
        centers = rng.uniform(-6, 6, size=(k, dims))
        which = rng.integers(0, k, size=canon["points"])
        pts = centers[which] + rng.normal(
            0, 1.0, (canon["points"], dims)
        )
        return KmeansProblem(points=pts, k=k)

    def _chunks(self, canon: dict) -> list[tuple[int, int]]:
        n, chunk = canon["points"], canon["chunk"]
        return [(lo, min(lo + chunk, n)) for lo in range(0, n, chunk)]

    def plan(self, args: dict | None) -> TaskPlan:
        canon = self.canonical_args(args)
        problem = self._problem(canon)
        centroids = problem.initial_centroids
        return TaskPlan(
            fn=_kmeans_chunk,
            args_list=[
                (problem.points[lo:hi].copy(), centroids, i)
                for i, (lo, hi) in enumerate(self._chunks(canon))
            ],
            significance=lambda points_chunk, centroids, idx: (
                ((idx % 9) + 1) / 10.0
            ),
            approxfun=None,
            cost=TaskCost(
                accurate=canon["chunk"] * canon["k"] * canon["dims"]
                * OPS_PER_DIM
            ),
        )

    def combine(self, args: dict | None, results: list) -> np.ndarray:
        canon = self.canonical_args(args)
        centroids = self._problem(canon).initial_centroids
        sums = np.zeros_like(centroids)
        counts = np.zeros(canon["k"], dtype=np.int64)
        for part in results:
            if part is not None:
                s, c = part
                sums += s
                counts += c
        nonzero = counts > 0
        out = centroids.copy()
        out[nonzero] = sums[nonzero] / counts[nonzero, None]
        return out

    def reference(self, args: dict | None) -> np.ndarray:
        canon = self.canonical_args(args)
        problem = self._problem(canon)
        centroids = problem.initial_centroids
        return self.combine(
            args,
            [
                _kmeans_chunk(problem.points[lo:hi], centroids, i)
                for i, (lo, hi) in enumerate(self._chunks(canon))
            ],
        )

    def quality(self, reference: Any, output: Any) -> float:
        return relative_error(reference.ravel(), output.ravel())

    # -- anytime surface -------------------------------------------------
    def anytime_state(self, args: dict | None) -> np.ndarray:
        # The classic (poor) first-k-points seeding, NOT the batch
        # surface's maxmin seeds: maxmin lands so close to the fixed
        # point on this data that Lloyd converges in one round and the
        # anytime quality curve would be flat.
        canon = self.canonical_args(args)
        return self._problem(canon).points[: canon["k"]].copy()

    def anytime_plan(
        self, args: dict | None, state: np.ndarray
    ) -> TaskPlan:
        canon = self.canonical_args(args)
        problem = self._problem(canon)
        return TaskPlan(
            fn=_kmeans_chunk,
            args_list=[
                (problem.points[lo:hi].copy(), state, i)
                for i, (lo, hi) in enumerate(self._chunks(canon))
            ],
            significance=lambda points_chunk, centroids, idx: (
                ((idx % 9) + 1) / 10.0
            ),
            approxfun=None,
            cost=TaskCost(
                accurate=canon["chunk"] * canon["k"] * canon["dims"]
                * OPS_PER_DIM
            ),
        )

    def anytime_update(
        self, args: dict | None, state: np.ndarray, results: list
    ) -> np.ndarray:
        canon = self.canonical_args(args)
        sums = np.zeros_like(state)
        counts = np.zeros(canon["k"], dtype=np.int64)
        for part in results:
            if part is not None:
                s, c = part
                sums += s
                counts += c
        nonzero = counts > 0
        out = state.copy()
        out[nonzero] = sums[nonzero] / counts[nonzero, None]
        return out

    def anytime_reference(self, args: dict | None) -> np.ndarray:
        # Converged Lloyd from the SAME seeding as the anytime iterate
        # (first-k-points): seeding from the batch maxmin centroids
        # lands in a differently-ordered fixed point and the quality
        # curve would plateau at the permutation distance.
        canon = self.canonical_args(args)
        problem = self._problem(canon)
        centroids = self.anytime_state(args)
        for _ in range(64):
            nxt = self.anytime_update(
                args,
                centroids,
                [
                    _kmeans_chunk(problem.points[lo:hi], centroids, i)
                    for i, (lo, hi) in enumerate(self._chunks(canon))
                ],
            )
            if float(np.abs(nxt - centroids).max()) < 1e-9:
                return nxt
            centroids = nxt
        return centroids


# ----------------------------------------------------------------------
# DCT (drop mode)
# ----------------------------------------------------------------------
@register("servable", "dct")
class DctServable(ServableKernel):
    """JPEG forward DCT in droppable zigzag-band tasks.

    Args: ``size`` (image side, multiple of 8, default 64), ``seed``
    (default 2015).  One task per zigzag diagonal band ``k`` (15 for
    8x8 blocks), significance decreasing with frequency
    (:func:`~repro.kernels.dct.band_significance`).  No ``approxfun``:
    a dropped band leaves its coefficients zero — exactly a JPEG
    encoder truncating the zigzag scan (**D** mode).  Quality is the
    inverse PSNR of the decoded image against the accurate pipeline.
    """

    name = "dct"

    def canonical_args(self, args: dict | None) -> dict:
        args = args or {}
        canon = {
            "size": _int_arg(args, "size", 64, 8, 4096),
            "seed": _int_arg(args, "seed", 2015, 0, 2**31),
        }
        if canon["size"] % BLOCK:
            raise ConfigError(
                f"servable arg 'size'={canon['size']} must be a "
                f"multiple of {BLOCK}"
            )
        return canon

    def _blocks(self, canon: dict) -> np.ndarray:
        img = synthetic_image(canon["size"], canon["size"], canon["seed"])
        return blockize(img)

    def plan(self, args: dict | None) -> TaskPlan:
        canon = self.canonical_args(args)
        blocks = self._blocks(canon)
        n_blocks = blocks.shape[0]
        return TaskPlan(
            fn=dct_band_value,
            args_list=[(blocks, k) for k in range(N_BANDS)],
            significance=lambda blocks, k: band_significance(k),
            approxfun=None,
            cost=lambda blocks, k: band_cost(n_blocks, k),
        )

    def combine(self, args: dict | None, results: list) -> np.ndarray:
        canon = self.canonical_args(args)
        size = canon["size"]
        n_blocks = (size // BLOCK) ** 2
        coeffs = np.zeros((n_blocks, BLOCK, BLOCK))
        for k, band in enumerate(results):
            if band is None:
                continue
            for j, (u, v) in enumerate(band_coefficients(k)):
                coeffs[:, u, v] = band[:, j]
        return reconstruct(coeffs, size, size)

    def reference(self, args: dict | None) -> np.ndarray:
        canon = self.canonical_args(args)
        blocks = self._blocks(canon)
        return self.combine(
            args,
            [dct_band_value(blocks, k) for k in range(N_BANDS)],
        )

    def quality(self, reference: Any, output: Any) -> float:
        return inverse_psnr(reference, output)


# ----------------------------------------------------------------------
# Fluidanimate (approximate-task mode)
# ----------------------------------------------------------------------
def _sph_chunk_value(
    pos: np.ndarray,
    vel: np.ndarray,
    rho: np.ndarray,
    lo: int,
    hi: int,
) -> tuple:
    """Accurate SPH update of particles ``lo:hi`` (value-returning
    wrapper around the benchmark's in-place chunk body)."""
    from ..kernels.fluidanimate import FluidState, sph_chunk_accurate

    old = FluidState(pos=pos, vel=vel, rho=rho)
    new = old.copy()
    sph_chunk_accurate(new, old, lo, hi)
    return new.pos[lo:hi], new.vel[lo:hi], new.rho[lo:hi]


def _sph_chunk_value_ballistic(
    pos: np.ndarray,
    vel: np.ndarray,
    rho: np.ndarray,
    lo: int,
    hi: int,
) -> tuple:
    """Approximate body: the paper's ballistic extrapolation."""
    from ..kernels.fluidanimate import FluidState, sph_chunk_ballistic

    old = FluidState(pos=pos, vel=vel, rho=rho)
    new = old.copy()
    sph_chunk_ballistic(new, old, lo, hi)
    return new.pos[lo:hi], new.vel[lo:hi], new.rho[lo:hi]


@register("servable", "fluidanimate", "fluid")
class FluidanimateServable(ServableKernel):
    """One SPH timestep of the dam-break scene, in particle-chunk
    tasks — the last Table 1 kernel promoted to the servable registry.

    Args: ``particles`` (default 192), ``chunk`` (particles per task,
    default 32), ``seed``.  Approximated chunks run the paper's
    ballistic extrapolation (``x += v * dt`` — **A** mode), exactly the
    benchmark's approximate timestep, task-granular instead of
    step-granular.  The job output is the new particle position array;
    quality is its relative error against the fully accurate step.  A
    task omitted by a fault leaves its chunk at the previous positions
    (stale, not wrong).
    """

    name = "fluidanimate"

    def canonical_args(self, args: dict | None) -> dict:
        args = args or {}
        canon = {
            "particles": _int_arg(args, "particles", 192, 16, 4096),
            "chunk": _int_arg(args, "chunk", 32, 4, 1024),
            "seed": _int_arg(args, "seed", 2015, 0, 2**31),
        }
        if canon["chunk"] > canon["particles"]:
            raise ConfigError(
                f"servable arg 'chunk'={canon['chunk']} exceeds "
                f"particles={canon['particles']}"
            )
        return canon

    def _state(self, canon: dict):
        from ..kernels.fluidanimate import FluidState

        return FluidState.dam_break(canon["particles"], canon["seed"])

    def _chunks(self, canon: dict) -> list[tuple[int, int]]:
        n, chunk = canon["particles"], canon["chunk"]
        return [(lo, min(lo + chunk, n)) for lo in range(0, n, chunk)]

    def plan(self, args: dict | None) -> TaskPlan:
        from ..kernels.fluidanimate import (
            UNIFORM_SIGNIFICANCE,
            sph_chunk_cost,
        )

        canon = self.canonical_args(args)
        state = self._state(canon)
        return TaskPlan(
            fn=_sph_chunk_value,
            # Tasks share the (read-only) previous-step arrays; each
            # returns only its own chunk's slices.
            args_list=[
                (state.pos, state.vel, state.rho, lo, hi)
                for lo, hi in self._chunks(canon)
            ],
            significance=UNIFORM_SIGNIFICANCE,
            approxfun=_sph_chunk_value_ballistic,
            cost=sph_chunk_cost(canon["chunk"], canon["particles"]),
        )

    def combine(self, args: dict | None, results: list) -> np.ndarray:
        canon = self.canonical_args(args)
        state = self._state(canon)
        pos = state.pos.copy()
        for (lo, hi), part in zip(self._chunks(canon), results):
            if part is not None:
                pos[lo:hi] = part[0]
        return pos

    def reference(self, args: dict | None) -> np.ndarray:
        from ..kernels.fluidanimate import fluid_reference

        canon = self.canonical_args(args)
        return fluid_reference(
            self._state(canon), steps=1, chunk=canon["chunk"]
        ).pos

    def quality(self, reference: Any, output: Any) -> float:
        return relative_error(reference, output)


def get_servable(spec: Any) -> ServableKernel:
    """Resolve a servable kernel by registry spec (or pass instances)."""
    kernel = resolve("servable", spec)
    if not isinstance(kernel, ServableKernel):
        raise ConfigError(
            f"servable spec {spec!r} resolved to "
            f"{type(kernel).__name__}, not a ServableKernel"
        )
    return kernel


def servable_names() -> list[str]:
    """Registered servable kernel names."""
    return registry_for("servable").names()
