"""Scenario conformance harness for the serving job shapes.

Every serving claim this repo makes — streams degrade mid-stream
instead of dropping frames, identical frames replay from cache for
free, anytime jobs refine monotonically and stop at the deadline,
faults degrade answers without corrupting them, the cluster ledger
stays in parity — is pinned here as a **scenario**: one registered
generator that runs real traffic through a real service, collects the
job reports into a :class:`~repro.harness.frames.TraceFrame`, and
produces BOTH a human-readable figure and a machine-checked list of
:class:`Check` assertions.

The registry doubles as the conformance suite: ``python -m
repro.harness fig-scenarios`` renders every figure and exits nonzero
if any check fails, and ``tests/serve/test_scenarios.py`` parametrizes
over :data:`SCENARIOS` so pytest runs the same assertions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..config import RuntimeConfig
from ..harness.frames import TraceFrame
from ..runtime.errors import ConfigError
from .server import STREAM_MIN_RATIO, JobRequest, TaskService
from .tenants import TenantSpec

__all__ = [
    "Check",
    "ScenarioReport",
    "SCENARIOS",
    "scenario",
    "run_scenarios",
]

#: Monotonicity slack for quality curves: at convergence consecutive
#: qualities graze machine precision and may wobble at the 1e-7 level.
QUALITY_EPS = 1e-6

#: Cluster-wide energy accounting tolerance (ISSUE acceptance: the
#: ledger's settled figure and the shards' own spent sums agree to 2%).
LEDGER_PARITY = 0.02

#: The deterministic faulty-engine spec the fault scenarios run under.
FAULTY_ENGINE = "faulty:fault_rate=0.1,protect_threshold=0.7,seed=3"


@dataclass
class Check:
    """One machine-checked scenario assertion."""

    name: str
    passed: bool
    detail: str = ""

    def render(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        tail = f"  ({self.detail})" if self.detail else ""
        return f"  [{mark}] {self.name}{tail}"


@dataclass
class ScenarioReport:
    """One scenario's outcome: trace frame, figure lines, checks."""

    name: str
    title: str
    frame: TraceFrame
    checks: list[Check] = field(default_factory=list)
    lines: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(c.passed for c in self.checks)

    def render(self) -> str:
        out = [f"== scenario: {self.name} — {self.title} =="]
        out += [f"  {line}" for line in self.lines]
        if len(self.frame):
            out.append("")
            out += [
                f"  {row}"
                for row in self.frame.render(max_rows=8).splitlines()
            ]
        out.append("")
        out += [c.render() for c in self.checks]
        verdict = "CONFORMS" if self.passed else "VIOLATION"
        out.append(f"  => {verdict}")
        return "\n".join(out)


#: name -> generator.  Each generator takes ``(small, n_workers)`` and
#: returns a :class:`ScenarioReport`.
SCENARIOS: dict[str, Callable[..., ScenarioReport]] = {}


def scenario(name: str, title: str):
    """Register one scenario generator (ProjectScylla-style registry:
    the module is the catalogue, the decorator the index)."""

    def wrap(fn: Callable[..., ScenarioReport]):
        if name in SCENARIOS:
            raise ConfigError(f"duplicate scenario {name!r}")
        fn.scenario_name = name
        fn.scenario_title = title
        SCENARIOS[name] = fn
        return fn

    return wrap


def run_scenarios(
    names: list[str] | None = None,
    *,
    small: bool = True,
    n_workers: int = 8,
) -> list[ScenarioReport]:
    """Run the selected scenarios (all by default), in registry order."""
    todo = list(SCENARIOS) if not names else list(names)
    unknown = [n for n in todo if n not in SCENARIOS]
    if unknown:
        raise ConfigError(
            f"unknown scenario(s) {unknown}; have {list(SCENARIOS)}"
        )
    return [
        SCENARIOS[name](small=small, n_workers=n_workers)
        for name in todo
    ]


def _config(n_workers: int, engine: str = "simulated") -> RuntimeConfig:
    return RuntimeConfig(
        policy="gtb-max", n_workers=n_workers, engine=engine
    )


# ----------------------------------------------------------------------
# Streaming shapes
# ----------------------------------------------------------------------
@scenario(
    "streaming-degrade",
    "budget pressure degrades frame ratio mid-stream, drops nothing",
)
def scenario_streaming_degrade(
    *, small: bool = True, n_workers: int = 8
) -> ScenarioReport:
    n_frames = 8 if small else 24
    spec = TenantSpec(name="cam", tier="free", budget_j=1e-6)
    with TaskService(_config(n_workers), tenants=[spec]) as svc:
        reports = []
        for i in range(n_frames):
            reports.append(
                svc.submit(
                    JobRequest(
                        tenant="cam",
                        kernel="sobel",
                        args={"size": 24, "seed": 100 + i},
                        stream="cam0",
                        ratio=0.9,
                    )
                )
            )
            svc.flush()
        summary = svc.stats()["streams"]["cam/cam0"]
    frame = TraceFrame.from_reports(reports)
    degraded = frame.filter(
        lambda r: r["ratio_served"] is not None
        and r["ratio_served"] <= STREAM_MIN_RATIO + 1e-9
    )
    checks = [
        Check(
            "every frame answered 200",
            all(r.ok for r in reports),
            str(frame.value_counts("status")),
        ),
        Check(
            "frame order preserved",
            frame.col("frame") == list(range(n_frames)),
        ),
        Check(
            "budget pressure degraded ratio mid-stream",
            len(degraded) > 0 and summary["degraded"] > 0,
            f"{summary['degraded']}/{n_frames} frames degraded",
        ),
        Check(
            "no frame dropped or rejected",
            summary["rejected"] == 0
            and all(r.status != "rejected-budget" for r in reports),
        ),
        Check(
            "served ratio never below the stream minimum",
            frame.min("ratio_served") >= STREAM_MIN_RATIO - 1e-9,
            f"min served ratio {frame.min('ratio_served'):.3f}",
        ),
    ]
    return ScenarioReport(
        name="streaming-degrade",
        title="budget pressure degrades frame ratio mid-stream",
        frame=frame,
        checks=checks,
        lines=[
            f"{n_frames} ordered sobel frames, free tenant with a "
            f"{spec.budget_j:g} J budget",
            f"mean served ratio {frame.mean('ratio_served'):.3f}, "
            f"stream counters {summary}",
        ],
    )


@scenario(
    "streaming-cache-replay",
    "identical re-submitted frames replay from cache at zero energy",
)
def scenario_streaming_cache_replay(
    *, small: bool = True, n_workers: int = 8
) -> ScenarioReport:
    with TaskService(
        _config(n_workers), tenants=("premium:name='p'",)
    ) as svc:
        args = {"size": 24, "seed": 7}
        first = svc.submit(
            JobRequest(
                tenant="p", kernel="sobel", args=args,
                stream="cam0", ratio=0.5,
            )
        )
        svc.flush()
        replay = svc.submit(
            JobRequest(
                tenant="p", kernel="sobel", args=args,
                stream="cam0", ratio=0.5,
            )
        )
        summary = svc.stats()["streams"]["p/cam0"]
    frame = TraceFrame.from_reports([first, replay])
    checks = [
        Check(
            "first submission executed",
            first.status == "executed",
            first.status,
        ),
        Check(
            "floor above request still served (regression)",
            first.ratio_served is not None
            and first.ratio_served >= 0.7 - 1e-9,
            f"served {first.ratio_served}",
        ),
        Check(
            "identical frame replayed from cache",
            replay.served_from_cache,
            replay.status,
        ),
        Check(
            "replay cost zero energy",
            replay.energy_j == 0.0,
            f"{replay.energy_j} J",
        ),
        Check(
            "replay advanced the frame lane",
            summary["next_frame"] == 2,
            f"next_frame {summary['next_frame']}",
        ),
    ]
    return ScenarioReport(
        name="streaming-cache-replay",
        title="identical frames replay from cache",
        frame=frame,
        checks=checks,
        lines=[
            "same sobel frame submitted twice on a premium stream "
            "(ratio floor 0.7 > requested 0.5)",
        ],
    )


# ----------------------------------------------------------------------
# Anytime shapes
# ----------------------------------------------------------------------
@scenario(
    "anytime-jacobi",
    "iterative jacobi refines monotonically, client takes at deadline",
)
def scenario_anytime_jacobi(
    *, small: bool = True, n_workers: int = 8
) -> ScenarioReport:
    rounds = 8 if small else 16
    args = {"n": 64 if small else 256, "chunk": 8, "seed": 3}
    with TaskService(
        _config(n_workers), tenants=("premium:name='lab'",)
    ) as svc:
        full = svc.submit_anytime(
            JobRequest(
                tenant="lab", kernel="jacobi", args=args,
                ratio=1.0, rounds=rounds,
            )
        )
        capped = svc.submit_anytime(
            JobRequest(
                tenant="lab",
                kernel="jacobi",
                args={**args, "seed": 4},
                rounds=rounds,
                deadline_s=1e-9,
                job_id="deadline",
            )
        )
    q = full.round_quality
    frame = TraceFrame.from_records(
        [
            {"round": i, "quality": qi, "job": "full"}
            for i, qi in enumerate(q)
        ]
        + [
            {"round": i, "quality": qi, "job": "deadline"}
            for i, qi in enumerate(capped.round_quality)
        ]
    )
    checks = [
        Check(
            "all rounds ran",
            full.rounds_run == rounds,
            f"{full.rounds_run}/{rounds}",
        ),
        Check(
            "quality improves monotonically (eps)",
            all(
                q[i + 1] <= q[i] + QUALITY_EPS
                for i in range(len(q) - 1)
            ),
            f"curve {[round(v, 6) for v in q]}",
        ),
        Check(
            "at least 10x refinement over the run",
            q[0] > 0 and q[-1] < q[0] / 10,
            f"{q[0]:.3g} -> {q[-1]:.3g}",
        ),
        Check(
            "deadline takes the current answer early",
            capped.status == "executed"
            and capped.rounds_run < rounds
            and "deadline" in capped.detail,
            capped.detail,
        ),
    ]
    return ScenarioReport(
        name="anytime-jacobi",
        title="jacobi anytime refinement",
        frame=frame,
        checks=checks,
        lines=[
            f"jacobi n={args['n']}, {rounds} rounds; a second job "
            "with a 1 ns deadline",
        ],
    )


@scenario(
    "anytime-kmeans",
    "iterative kmeans improves per round, early take stops the loop",
)
def scenario_anytime_kmeans(
    *, small: bool = True, n_workers: int = 8
) -> ScenarioReport:
    rounds = 8 if small else 16
    args = {
        "points": 256 if small else 1024,
        "k": 4,
        "chunk": 64,
        "seed": 5,
    }
    taken = []
    with TaskService(
        _config(n_workers), tenants=("premium:name='lab'",)
    ) as svc:
        full = svc.submit_anytime(
            JobRequest(
                tenant="lab", kernel="kmeans", args=args,
                ratio=1.0, rounds=rounds,
            )
        )
        early = svc.submit_anytime(
            JobRequest(
                tenant="lab",
                kernel="kmeans",
                args={**args, "seed": 6},
                rounds=rounds,
                job_id="early",
            ),
            on_round=lambda rr: taken.append(rr.round) or rr.round < 2,
        )
    q = full.round_quality
    frame = TraceFrame.from_records(
        {"round": i, "quality": qi} for i, qi in enumerate(q)
    )
    checks = [
        Check(
            "first round is not already converged",
            q[0] > 0,
            f"q0 {q[0]:.3g}",
        ),
        Check(
            "final quality at least as good as the first",
            q[-1] <= q[0] + QUALITY_EPS,
            f"{q[0]:.3g} -> {q[-1]:.3g}",
        ),
        Check(
            "early take stops after the callback says so",
            early.rounds_run == 3 and "early take" in early.detail,
            early.detail,
        ),
        Check(
            "callback saw every executed round",
            taken == [0, 1, 2],
            str(taken),
        ),
    ]
    return ScenarioReport(
        name="anytime-kmeans",
        title="kmeans anytime refinement",
        frame=frame,
        checks=checks,
        lines=[
            f"kmeans points={args['points']}, {rounds} rounds; a "
            "second job early-taken after round 3",
        ],
    )


# ----------------------------------------------------------------------
# Faults under load
# ----------------------------------------------------------------------
def _degraded_not_wrong_checks(reports, frame: TraceFrame) -> list[Check]:
    """The shared fault-scenario contract: shed or degrade, never
    corrupt, never error."""
    import math

    pi_jobs = [
        r for r in reports
        if r.kernel == "mc-pi" and r.status == "executed"
        and isinstance(r.output, float)
    ]
    qualities = [
        r.quality for r in reports if r.quality is not None
    ]
    return [
        Check(
            "no 5xx/4xx beyond load shedding",
            all(r.code in (200, 429) for r in reports),
            str(frame.value_counts("code")),
        ),
        Check(
            "executed mc-pi answers stay near pi",
            all(
                math.isfinite(r.output)
                and abs(r.output - math.pi) < 0.8
                for r in pi_jobs
            ),
            f"{len(pi_jobs)} mc-pi jobs",
        ),
        Check(
            "quality bounded (degraded, not wrong)",
            all(0.0 <= v < 1.0 for v in qualities),
            f"max quality {max(qualities):.3g}"
            if qualities
            else "no scored jobs",
        ),
    ]


@scenario(
    "faults-under-serve",
    "omission faults under serve load degrade answers, never corrupt",
)
def scenario_faults_under_serve(
    *, small: bool = True, n_workers: int = 8
) -> ScenarioReport:
    n_jobs = 24 if small else 96
    with TaskService(
        _config(n_workers, engine=FAULTY_ENGINE),
        tenants=(
            "standard:name='acme'",
            "free:name='hobby',budget_j=0.002",
        ),
    ) as svc:
        reports = []
        for i in range(n_jobs):
            tenant = "acme" if i % 2 == 0 else "hobby"
            if i % 3 == 0:
                kernel, args = "mc-pi", {
                    "blocks": 6, "samples": 300, "seed": i % 5,
                }
            else:
                kernel, args = "sobel", {"size": 24, "seed": i % 7}
            reports.append(
                svc.submit(
                    JobRequest(
                        tenant=tenant, kernel=kernel, args=args,
                        ratio=0.8, job_id=f"j{i}",
                    )
                )
            )
            if i % 4 == 3:
                svc.flush()
        svc.flush()
        faults = len(svc.scheduler.engine.fault_log.records)
        floors = {
            name: state.spec.ratio_floor
            for name, state in svc.tenants.items()
        }
    frame = TraceFrame.from_reports(reports)
    served = frame.filter(lambda r: r["code"] == 200)
    checks = _degraded_not_wrong_checks(reports, frame) + [
        Check("faults actually fired", faults > 0, f"{faults} faults"),
        Check(
            "ratio floors held under faults",
            all(
                r.ratio_served is None
                or r.ratio_served >= floors[r.tenant] - 1e-9
                for r in reports
            ),
        ),
        Check(
            "most jobs still served",
            len(served) >= n_jobs // 2,
            f"{len(served)}/{n_jobs} served",
        ),
    ]
    return ScenarioReport(
        name="faults-under-serve",
        title="faults under serve load",
        frame=frame,
        checks=checks,
        lines=[
            f"{n_jobs} mixed jobs on the {FAULTY_ENGINE!r} engine",
            f"{faults} injected faults; outcomes "
            f"{frame.value_counts('status')}",
        ],
    )


@scenario(
    "faults-under-cluster",
    "faulty shards stay degraded-not-wrong with ledger parity <= 2%",
)
def scenario_faults_under_cluster(
    *, small: bool = True, n_workers: int = 8
) -> ScenarioReport:
    from ..cluster.service import ClusterService

    n_jobs = 24 if small else 96
    budget_j = 0.004
    svc = ClusterService(
        _config(n_workers, engine=FAULTY_ENGINE),
        tenants=[
            TenantSpec(name="acme", tier="standard"),
            TenantSpec(
                name="hobby", tier="free", budget_j=budget_j
            ),
        ],
        cluster=3,
    )
    try:
        reports = []
        for i in range(n_jobs):
            tenant = "acme" if i % 2 == 0 else "hobby"
            if i % 3 == 0:
                kernel, args = "mc-pi", {
                    "blocks": 6, "samples": 300, "seed": i % 5,
                }
            else:
                kernel, args = "sobel", {"size": 24, "seed": i % 7}
            reports.append(
                svc.submit(
                    JobRequest(
                        tenant=tenant, kernel=kernel, args=args,
                        ratio=0.8, job_id=f"j{i}",
                    )
                )
            )
            if i % 4 == 3:
                svc.flush()
        svc.flush()
        faults = sum(
            len(w.service.scheduler.engine.fault_log.records)
            for w in svc.shards
        )
        summary = svc.tenant_summary("hobby")
    finally:
        svc.close()
    frame = TraceFrame.from_reports(reports)
    spent = summary["spent_j"]
    settled = summary["ledger_settled_j"]
    parity = (
        abs(spent - settled) / max(spent, settled)
        if max(spent, settled) > 0
        else 0.0
    )
    checks = _degraded_not_wrong_checks(reports, frame) + [
        Check(
            "faults fired across shards", faults > 0, f"{faults} faults"
        ),
        Check(
            "ledger parity within tolerance",
            parity <= LEDGER_PARITY,
            f"shards {spent:.3g} J vs ledger {settled:.3g} J "
            f"({parity:.2%})",
        ),
        Check(
            "cluster budget never overspent unboundedly",
            spent <= budget_j * 1.5,
            f"{spent:.3g} J of {budget_j:g} J",
        ),
    ]
    return ScenarioReport(
        name="faults-under-cluster",
        title="faults under cluster load",
        frame=frame,
        checks=checks,
        lines=[
            f"{n_jobs} mixed jobs across 3 faulty shards",
            f"hobby: spent {spent:.3g} J, ledger {settled:.3g} J, "
            f"parity {parity:.2%}",
        ],
    )
