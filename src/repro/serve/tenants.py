"""Tenants: admission control and energy budgets for the serving layer.

A *tenant* is one consumer of the shared significance-aware service —
the EXCESS framing of the paper's runtime as long-lived infrastructure.
Each tenant carries

* an **admission contract** (:class:`TenantSpec`): how many jobs may sit
  in its queue (``max_pending``), how far the service may degrade its
  accurate-task ratio (``ratio_floor``), whether a lower-ratio cached
  result is an acceptable answer under pressure, and an optional
  lifetime **energy budget** in Joules;
* **runtime state** (:class:`TenantState`): Joules spent so far,
  measured per-task energy, job counters, and a per-tenant
  :class:`~repro.tuning.governor.EnergyBudgetGovernor` steering the
  tenant's served ratio via
  :meth:`~repro.tuning.governor.EnergyBudgetGovernor.control_step` —
  the same deadbeat projection that governs single runs, here fed
  per-tenant measurements by the service instead of engine ticks.

Specs live in the ``"tenant"`` registry family (``"premium"``,
``"standard"``, ``"free"``) so a whole multi-tenant service is
describable from :class:`~repro.config.RuntimeConfig` with plain
strings: ``tenants=("premium:name='alice'",
"free:name='bob',budget_j=2.0")``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..registry import register
from ..runtime.errors import ConfigError
from ..tuning.governor import EnergyBudgetGovernor

__all__ = ["TenantSpec", "TenantState", "TIER_DEFAULTS"]

#: EWMA weight of a new per-task energy observation.
_ENERGY_ALPHA = 0.5


@dataclass(frozen=True)
class TenantSpec:
    """The admission contract of one tenant (plain data, registry-made).

    Parameters
    ----------
    name:
        Tenant identity; jobs address tenants by this name.
    tier:
        The registry tier the spec was built from (cosmetic).
    budget_j:
        Lifetime energy budget in Joules on the service's accounting
        (``None`` = unmetered).  Once spent, new work is only served
        from the cache — fresh execution is rejected 429-style.
    max_pending:
        Queue cap: jobs admitted but not yet executed.  Beyond it the
        service sheds load (cache or reject).
    ratio_floor:
        Quality guarantee: the served accurate ratio never drops below
        this, however tight the budget.
    degrade_to_cache:
        Whether a *lower-ratio* cached result is an acceptable answer
        when the tenant is over budget or its queue is saturated.
    smoothing:
        Governor smoothing for this tenant's ratio controller.
    """

    name: str
    tier: str = "standard"
    budget_j: float | None = None
    max_pending: int = 64
    ratio_floor: float = 0.0
    degrade_to_cache: bool = True
    smoothing: float = 0.7

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ConfigError(f"tenant needs a name, got {self.name!r}")
        if self.budget_j is not None and self.budget_j <= 0:
            raise ConfigError(
                f"tenant budget must be > 0 J, got {self.budget_j}"
            )
        if self.max_pending < 1:
            raise ConfigError(
                f"max_pending must be >= 1, got {self.max_pending}"
            )
        if not 0.0 <= self.ratio_floor <= 1.0:
            raise ConfigError(
                f"ratio_floor must be in [0, 1], got {self.ratio_floor}"
            )

    def replace(self, **changes) -> "TenantSpec":
        return replace(self, **changes)


#: Per-tier defaults behind the registry factories.
TIER_DEFAULTS: dict[str, dict] = {
    "premium": {"max_pending": 256, "ratio_floor": 0.7},
    "standard": {"max_pending": 64, "ratio_floor": 0.3},
    "free": {"max_pending": 8, "ratio_floor": 0.0},
}


def _tier_factory(tier: str):
    defaults = TIER_DEFAULTS[tier]

    def make(name: str | None = None, **kwargs) -> TenantSpec:
        merged = {**defaults, **kwargs}
        return TenantSpec(name=name or tier, tier=tier, **merged)

    make.__name__ = f"make_{tier}_tenant"
    make.__qualname__ = make.__name__
    make.__doc__ = (
        f"Registry factory: a {tier!r}-tier :class:`TenantSpec` "
        f"(defaults {defaults}) with field overrides."
    )
    return make


make_premium_tenant = register("tenant", "premium")(_tier_factory("premium"))
make_standard_tenant = register("tenant", "standard", "default")(
    _tier_factory("standard")
)
make_free_tenant = register("tenant", "free")(_tier_factory("free"))


class TenantState:
    """Live serving state of one tenant inside a ``TaskService``."""

    def __init__(self, spec: TenantSpec) -> None:
        self.spec = spec
        self.spent_j = 0.0
        #: Jobs admitted but not yet executed (queue-cap universe).
        self.pending = 0
        # Outcome counters, keyed by JobReport status strings.
        self.executed = 0
        self.cached = 0
        self.cached_degraded = 0
        self.coalesced = 0
        self.rejected = 0
        #: Measured Joules per accurate / approximate task (EWMA; None
        #: until the first observation — callers fall back to plan
        #: costs).
        self.e_acc_j: float | None = None
        self.e_apx_j: float | None = None
        # One governor per tenant: same control law as the single-run
        # energy controller, driven by the service between rounds.
        # Unmetered tenants run open-loop (ratio pinned to 1.0) — the
        # governor's budget-less mode would park them at the *floor*.
        self.governor: EnergyBudgetGovernor | None = (
            None
            if spec.budget_j is None
            else EnergyBudgetGovernor(
                budget_j=spec.budget_j,
                ratio_floor=spec.ratio_floor,
                ratio_ceiling=1.0,
                smoothing=spec.smoothing,
            )
        )
        #: Cluster mode: a :class:`~repro.cluster.ledger.LedgerLease`
        #: on the cluster-wide energy account.  ``None`` (the default,
        #: single-service mode) keeps the local lifetime-budget check.
        self.lease = None

    # -- admission predicates -------------------------------------------
    @property
    def ratio(self) -> float:
        """The accurate ratio this tenant is currently served at."""
        return 1.0 if self.governor is None else self.governor.ratio

    @property
    def over_budget(self) -> bool:
        if self.lease is not None:
            # Cluster mode: cut off only when the local lease is dry
            # AND the cluster account has nothing left to grant — a
            # read-only predicate; refills happen in replenish().
            return self.lease.exhausted
        budget = self.spec.budget_j
        return budget is not None and self.spent_j >= budget

    @property
    def saturated(self) -> bool:
        return self.pending >= self.spec.max_pending

    @property
    def budget_left_j(self) -> float | None:
        if self.spec.budget_j is None:
            return None
        return max(0.0, self.spec.budget_j - self.spent_j)

    # -- accounting ------------------------------------------------------
    def charge(self, energy_j: float) -> None:
        """Bill one executed job: local books, plus the cluster lease
        when one is attached (a lock-free local draw — see
        :mod:`repro.cluster.ledger`)."""
        self.spent_j += energy_j
        if self.lease is not None:
            self.lease.draw(energy_j)

    def attach_lease(self, lease) -> None:
        """Enter cluster mode: budget enforcement moves to ``lease``.

        The governor keeps steering *local* spend, now against the
        quota actually leased to this shard (retargeted each
        :meth:`replenish`) instead of the full cluster budget.
        """
        if self.lease is not None:
            raise ConfigError(
                f"tenant {self.spec.name!r} already holds a lease"
            )
        self.lease = lease

    def replenish(self) -> bool:
        """Pre-round lease top-up (cluster mode; no-op otherwise).

        Returns whether this tenant may keep executing on this shard.
        Retargets the governor to the lease's steering target (granted
        quota plus remaining cluster headroom — see
        :attr:`~repro.cluster.ledger.LedgerLease.steer_target_j`) so
        the deadbeat solve tracks what this shard can actually obtain.
        """
        if self.lease is None:
            return not self.over_budget
        ok = self.lease.ensure()
        if self.governor is not None:
            target = self.lease.steer_target_j
            if target > 0.0:
                self.governor.retarget(target)
        return ok

    def observe_energy(
        self, kind: str, busy_s: float, tasks: int, watts: float
    ) -> None:
        """Fold one round's per-kind busy time into the energy model."""
        if tasks <= 0:
            return
        observed = busy_s / tasks * watts
        attr = "e_acc_j" if kind == "acc" else "e_apx_j"
        prior = getattr(self, attr)
        setattr(
            self,
            attr,
            observed
            if prior is None
            else prior + _ENERGY_ALPHA * (observed - prior),
        )

    def steer(self, now: float, remaining_tasks: int) -> float:
        """One governor step against this tenant's remaining queue."""
        if self.governor is None:
            return 1.0
        e_acc = self.e_acc_j if self.e_acc_j is not None else 0.0
        e_apx = self.e_apx_j if self.e_apx_j is not None else 0.0
        return self.governor.control_step(
            now,
            spent_j=self.spent_j,
            remaining_tasks=remaining_tasks,
            e_acc_j=e_acc,
            e_apx_j=e_apx,
        )

    def summary(self) -> dict:
        """Flat per-tenant digest for stats endpoints and figures."""
        return {
            "tenant": self.spec.name,
            "tier": self.spec.tier,
            "budget_j": self.spec.budget_j,
            "spent_j": self.spent_j,
            "over_budget": self.over_budget,
            "ratio": self.ratio,
            "pending": self.pending,
            "executed": self.executed,
            "cached": self.cached,
            "cached_degraded": self.cached_degraded,
            "coalesced": self.coalesced,
            "rejected": self.rejected,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        budget = (
            "unmetered"
            if self.spec.budget_j is None
            else f"{self.spent_j:.3g}/{self.spec.budget_j:.3g}J"
        )
        return f"<TenantState {self.spec.name} {budget}>"
