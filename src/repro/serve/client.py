"""Clients for the JSON-lines serve gateway.

:class:`ServeClient` is a small blocking-socket client (scripts, CI
smoke, examples); :class:`AsyncServeClient` is its asyncio twin for
callers already living in an event loop.  Both speak the one-JSON-
object-per-line protocol of :class:`~repro.serve.server.ServeServer`
and raise :class:`ServeClientError` on transport or protocol errors —
*rejections are not errors*: a 429/404 outcome comes back as a normal
job dict with its ``status``/``code`` fields set.
"""

from __future__ import annotations

import json
import socket
from typing import Any

from ..runtime.errors import ReproError

__all__ = ["ServeClientError", "ServeClient", "AsyncServeClient"]


class ServeClientError(ReproError):
    """Transport/protocol failure talking to a serve gateway."""


def _submit_message(
    tenant: str,
    kernel: str,
    args: dict | None,
    ratio: float,
    stream: str | None = None,
    frame: int | None = None,
    rounds: int | None = None,
    deadline_s: float | None = None,
) -> dict:
    message: dict[str, Any] = {
        "op": "submit",
        "tenant": tenant,
        "kernel": kernel,
        "ratio": ratio,
    }
    if args is not None:
        message["args"] = args
    if stream is not None:
        message["stream"] = stream
    if frame is not None:
        message["frame"] = frame
    if rounds is not None:
        message["rounds"] = rounds
    if deadline_s is not None:
        message["deadline_s"] = deadline_s
    return message


def _unwrap(response: dict, key: str) -> dict:
    if "error" in response:
        raise ServeClientError(f"gateway error: {response['error']}")
    if key not in response:
        raise ServeClientError(
            f"malformed gateway response (no {key!r}): {response}"
        )
    return response[key]


class ServeClient:
    """Blocking JSON-lines client for one gateway connection."""

    def __init__(
        self, host: str, port: int, timeout_s: float = 30.0
    ) -> None:
        try:
            self._sock = socket.create_connection(
                (host, port), timeout=timeout_s
            )
        except OSError as exc:
            raise ServeClientError(
                f"cannot connect to serve gateway at {host}:{port}: {exc}"
            ) from exc
        self._file = self._sock.makefile("rwb")

    # -- framing ---------------------------------------------------------
    def _roundtrip(self, message: dict) -> dict:
        try:
            self._file.write(json.dumps(message).encode("utf-8") + b"\n")
            self._file.flush()
            line = self._file.readline()
        except OSError as exc:
            raise ServeClientError(f"gateway I/O failed: {exc}") from exc
        if not line:
            raise ServeClientError("gateway closed the connection")
        try:
            return json.loads(line)
        except json.JSONDecodeError as exc:
            raise ServeClientError(
                f"malformed gateway frame: {line[:200]!r}"
            ) from exc

    # -- operations ------------------------------------------------------
    def ping(self) -> bool:
        return bool(self._roundtrip({"op": "ping"}).get("pong"))

    def submit(
        self,
        tenant: str,
        kernel: str,
        args: dict | None = None,
        ratio: float = 1.0,
        *,
        stream: str | None = None,
        frame: int | None = None,
        rounds: int | None = None,
        deadline_s: float | None = None,
    ) -> dict:
        """Submit one job and block until its report comes back.

        ``stream``/``frame`` select the streaming shape (ordered frame
        sequences, degrade-not-drop under pressure); ``rounds`` /
        ``deadline_s`` select the anytime shape (the report carries
        ``rounds_run`` and the per-round ``round_quality`` curve).
        """
        return _unwrap(
            self._roundtrip(
                _submit_message(
                    tenant, kernel, args, ratio,
                    stream=stream, frame=frame,
                    rounds=rounds, deadline_s=deadline_s,
                )
            ),
            "job",
        )

    def stats(self) -> dict:
        return _unwrap(self._roundtrip({"op": "stats"}), "stats")

    def metrics(self, format: str = "json"):
        """Scrape the gateway's metrics registry.

        ``format="json"`` (default) returns the stable-JSON snapshot
        as a dict; ``format="prometheus"`` (or ``"text"``) returns the
        Prometheus text exposition as a string.
        """
        message: dict[str, Any] = {"op": "metrics"}
        as_text = format in ("prometheus", "text")
        if as_text:
            message["format"] = format
        return _unwrap(
            self._roundtrip(message), "text" if as_text else "metrics"
        )

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class AsyncServeClient:
    """Asyncio JSON-lines client (one connection, sequential frames)."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader = None
        self._writer = None

    async def connect(self) -> "AsyncServeClient":
        import asyncio

        try:
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )
        except OSError as exc:
            raise ServeClientError(
                f"cannot connect to serve gateway at "
                f"{self.host}:{self.port}: {exc}"
            ) from exc
        return self

    async def _roundtrip(self, message: dict) -> dict:
        if self._writer is None:
            await self.connect()
        self._writer.write(json.dumps(message).encode("utf-8") + b"\n")
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ServeClientError("gateway closed the connection")
        return json.loads(line)

    async def ping(self) -> bool:
        return bool((await self._roundtrip({"op": "ping"})).get("pong"))

    async def submit(
        self,
        tenant: str,
        kernel: str,
        args: dict | None = None,
        ratio: float = 1.0,
        *,
        stream: str | None = None,
        frame: int | None = None,
        rounds: int | None = None,
        deadline_s: float | None = None,
    ) -> dict:
        return _unwrap(
            await self._roundtrip(
                _submit_message(
                    tenant, kernel, args, ratio,
                    stream=stream, frame=frame,
                    rounds=rounds, deadline_s=deadline_s,
                )
            ),
            "job",
        )

    async def stats(self) -> dict:
        return _unwrap(await self._roundtrip({"op": "stats"}), "stats")

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except OSError:  # pragma: no cover - teardown race
                pass
            self._writer = self._reader = None

    async def __aenter__(self) -> "AsyncServeClient":
        return await self.connect()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()
