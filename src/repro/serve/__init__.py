"""``repro.serve`` — async, multi-tenant significance-aware serving.

The serving subsystem: a long-lived :class:`TaskService` multiplexing
every tenant's jobs onto one shared execution engine, per-tenant
admission control and energy budgets (:mod:`repro.serve.tenants`), an
approximate-result cache that degrades answers instead of shedding them
(:mod:`repro.serve.cache`), servable kernels
(:mod:`repro.serve.kernels`), a JSON-lines TCP gateway
(:class:`ServeServer`) with sync/async clients
(:mod:`repro.serve.client`), and the two-tenant isolation figure
(:func:`repro.serve.figure.fig_serve`).

Importing this package registers the ``"tenant"`` and ``"servable"``
registry families.
"""

from .cache import ApproxResultCache, CacheEntry, CacheStats
from .client import AsyncServeClient, ServeClient, ServeClientError
from .kernels import (
    MonteCarloPiServable,
    ServableKernel,
    SobelServable,
    TaskPlan,
    get_servable,
    servable_names,
)
from .server import (
    DEFAULT_SERVE_CONFIG,
    JobReport,
    JobRequest,
    LocalGateway,
    ServeServer,
    TaskService,
)
from .tenants import TenantSpec, TenantState

__all__ = [
    "TaskService",
    "LocalGateway",
    "ServeServer",
    "JobRequest",
    "JobReport",
    "DEFAULT_SERVE_CONFIG",
    "TenantSpec",
    "TenantState",
    "ApproxResultCache",
    "CacheEntry",
    "CacheStats",
    "ServableKernel",
    "SobelServable",
    "MonteCarloPiServable",
    "TaskPlan",
    "get_servable",
    "servable_names",
    "ServeClient",
    "AsyncServeClient",
    "ServeClientError",
]
