"""``repro.serve`` — async, multi-tenant significance-aware serving.

The serving subsystem: a long-lived :class:`TaskService` multiplexing
every tenant's jobs onto one shared execution engine, per-tenant
admission control and energy budgets (:mod:`repro.serve.tenants`), an
approximate-result cache that degrades answers instead of shedding them
(:mod:`repro.serve.cache`), servable kernels
(:mod:`repro.serve.kernels`), a JSON-lines TCP gateway
(:class:`ServeServer`) with sync/async clients
(:mod:`repro.serve.client`), and the two-tenant isolation figure
(:func:`repro.serve.figure.fig_serve`).

Importing this package registers the ``"tenant"`` and ``"servable"``
registry families.
"""

from typing import Any, Protocol, runtime_checkable


@runtime_checkable
class ServiceProtocol(Protocol):
    """The structural contract every task service front-end implements.

    Both the single-node :class:`TaskService` and the sharded
    :class:`~repro.cluster.service.ClusterService` satisfy this
    protocol, and the gateways (:class:`LocalGateway`,
    :class:`ServeServer`) are typed against it rather than duck-typing
    a concrete service — swapping a node for a cluster behind a
    gateway is a constructor-argument change.

    The protocol is ``runtime_checkable`` so wiring code can validate
    a service object up front (``isinstance(svc, ServiceProtocol)``);
    as with all runtime-checkable protocols, the check sees method
    *presence*, not signatures.
    """

    def submit(self, request: Any) -> str:
        """Queue one job; returns its job id."""
        ...

    def flush(self) -> list[Any]:
        """Run every queued job to completion; returns their reports."""
        ...

    @property
    def pending_jobs(self) -> int:
        """Jobs admitted but not yet settled."""
        ...

    def stats(self) -> dict[str, Any]:
        """Service-level counters (schema owned by the implementation)."""
        ...

    def close(self) -> None:
        """Settle outstanding work and release resources (idempotent)."""
        ...


from .cache import ApproxResultCache, CacheEntry, CacheStats
from .client import AsyncServeClient, ServeClient, ServeClientError
from .kernels import (
    AnytimeServable,
    FluidanimateServable,
    MonteCarloPiServable,
    ServableKernel,
    SobelServable,
    TaskPlan,
    get_servable,
    servable_names,
)
from .server import (
    DEFAULT_SERVE_CONFIG,
    STREAM_MIN_RATIO,
    STREAM_WINDOW,
    JobReport,
    JobRequest,
    LocalGateway,
    RoundResult,
    ServeServer,
    StreamState,
    TaskService,
)
from .tenants import TenantSpec, TenantState

__all__ = [
    "ServiceProtocol",
    "TaskService",
    "LocalGateway",
    "ServeServer",
    "JobRequest",
    "JobReport",
    "RoundResult",
    "StreamState",
    "DEFAULT_SERVE_CONFIG",
    "STREAM_WINDOW",
    "STREAM_MIN_RATIO",
    "TenantSpec",
    "TenantState",
    "ApproxResultCache",
    "CacheEntry",
    "CacheStats",
    "ServableKernel",
    "AnytimeServable",
    "SobelServable",
    "MonteCarloPiServable",
    "FluidanimateServable",
    "TaskPlan",
    "get_servable",
    "servable_names",
    "ServeClient",
    "AsyncServeClient",
    "ServeClientError",
]
