"""``fig-serve``: the two-tenant isolation figure.

The serving subsystem's acceptance scenario: tenants A and B share one
engine; A (batch traffic) carries an energy budget at
``budget_frac`` (60 %) of what its stream costs accurately on a solo
service, B (interactive traffic) is unmetered and latency-sensitive.
The figure runs three streams —

1. **A solo, accurate** — prices A's stream, fixing the budget;
2. **B solo** — B's reference quality and p95 latency;
3. **shared** — A (budgeted) and B interleaved on one engine, A's whole
   batch queued up front, B streamed per round —

and reports, per tenant, the admission outcome mix, energy versus
budget, served ratio, and quality; and for B the solo-versus-shared
p95-latency and quality deltas with a 5 % verdict.  On the simulated
engine every number is deterministic (latencies are virtual seconds),
which is what lets ``tests/serve`` assert the verdict bit-for-bit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..config import RuntimeConfig
from ..harness.report import format_table
from .server import JobReport, JobRequest, TaskService

__all__ = ["percentile", "ServeFigData", "fig_serve"]

#: Isolation acceptance band: B's shared-run quality and p95 latency
#: must sit within this fraction of its solo run.
ISOLATION_TOLERANCE = 0.05


def percentile(values, q: float) -> float:
    """Nearest-rank percentile (p95 of latencies and friends)."""
    if not values:
        raise ValueError("percentile of an empty sequence")
    if not 0.0 < q <= 1.0:
        raise ValueError(f"q must be in (0, 1], got {q}")
    ordered = sorted(values)
    return ordered[max(0, math.ceil(q * len(ordered)) - 1)]


def _p95_latency(reports: list[JobReport]) -> float:
    return percentile([r.latency_s for r in reports], 0.95)


def _mean_quality(reports: list[JobReport]) -> float:
    scored = [r.quality for r in reports if r.quality is not None]
    return sum(scored) / len(scored) if scored else 0.0


def _mean_served_ratio(reports: list[JobReport]) -> float:
    served = [
        r.ratio_served for r in reports if r.ratio_served is not None
    ]
    return sum(served) / len(served) if served else 0.0


@dataclass
class ServeFigData:
    """Raw numbers of one fig-serve run plus the rendered view."""

    engine: str
    budget_frac: float
    a_budget_j: float
    a_solo_energy_j: float
    tenant_stats: dict[str, dict] = field(default_factory=dict)
    a_reports: list[JobReport] = field(default_factory=list)
    b_solo_reports: list[JobReport] = field(default_factory=list)
    b_shared_reports: list[JobReport] = field(default_factory=list)

    # -- acceptance metrics ----------------------------------------------
    @property
    def b_solo_p95_s(self) -> float:
        return _p95_latency(self.b_solo_reports)

    @property
    def b_shared_p95_s(self) -> float:
        return _p95_latency(self.b_shared_reports)

    @property
    def b_p95_delta(self) -> float:
        """Fractional p95-latency change of B, shared versus solo."""
        solo = self.b_solo_p95_s
        return (self.b_shared_p95_s - solo) / solo if solo else 0.0

    @property
    def b_quality_delta(self) -> float:
        """Absolute quality change of B (both sides ~0 when accurate)."""
        return abs(
            _mean_quality(self.b_shared_reports)
            - _mean_quality(self.b_solo_reports)
        )

    @property
    def a_mean_served_ratio(self) -> float:
        return _mean_served_ratio(self.a_reports)

    @property
    def a_degraded(self) -> bool:
        """Did the service degrade A (lower ratio or degraded cache)?"""
        return self.a_mean_served_ratio < 1.0 - 1e-9 or any(
            r.status == "cached-degraded" for r in self.a_reports
        )

    @property
    def isolated(self) -> bool:
        """The acceptance bit: B within the 5 % band on both axes."""
        return (
            abs(self.b_p95_delta) <= ISOLATION_TOLERANCE
            and self.b_quality_delta <= ISOLATION_TOLERANCE
        )

    # -- rendering ---------------------------------------------------------
    def render(self) -> str:
        sections = []
        rows = []
        for name, stats in self.tenant_stats.items():
            rows.append(
                [
                    name,
                    stats["tier"],
                    "-" if stats["budget_j"] is None
                    else stats["budget_j"],
                    stats["spent_j"],
                    stats["executed"],
                    stats["cached"] + stats["cached_degraded"],
                    stats["coalesced"],
                    stats["rejected"],
                    stats["ratio"],
                ]
            )
        sections.append(
            format_table(
                [
                    "tenant", "tier", "budget (J)", "spent (J)",
                    "executed", "cached", "coalesced", "rejected",
                    "ratio",
                ],
                rows,
                title=(
                    f"[fig-serve] two tenants on one shared "
                    f"'{self.engine}' engine — A budget at "
                    f"{self.budget_frac:.0%} of its solo energy "
                    f"({self.a_budget_j:.4g} J of "
                    f"{self.a_solo_energy_j:.4g} J)"
                ),
            )
        )

        sections.append(
            format_table(
                ["stream", "jobs", "mean ratio", "mean quality",
                 "p95 latency (s)"],
                [
                    [
                        "A shared (budgeted)",
                        len(self.a_reports),
                        self.a_mean_served_ratio,
                        _mean_quality(self.a_reports),
                        _p95_latency(self.a_reports),
                    ],
                    [
                        "B solo",
                        len(self.b_solo_reports),
                        _mean_served_ratio(self.b_solo_reports),
                        _mean_quality(self.b_solo_reports),
                        self.b_solo_p95_s,
                    ],
                    [
                        "B shared",
                        len(self.b_shared_reports),
                        _mean_served_ratio(self.b_shared_reports),
                        _mean_quality(self.b_shared_reports),
                        self.b_shared_p95_s,
                    ],
                ],
                title="per-stream outcomes",
            )
        )

        verdict = "PASS" if self.isolated else "FAIL"
        degraded = "yes" if self.a_degraded else "NO"
        sections.append(
            f"isolation: B p95 delta {self.b_p95_delta:+.2%}, "
            f"quality delta {self.b_quality_delta:.4g} "
            f"(band {ISOLATION_TOLERANCE:.0%}) -> {verdict}; "
            f"A degraded under budget: {degraded}"
        )
        return "\n\n".join(sections)


def _b_request(size: int, wave: int, j: int) -> JobRequest:
    # Distinct seeds: B's interactive traffic never repeats, so every
    # job really executes (the latency measurement must not be a cache
    # artifact).
    return JobRequest(
        tenant="b",
        kernel="sobel",
        args={"size": size, "seed": 1000 + 17 * wave + j},
    )


def _service(engine: str, n_workers: int, tenants: tuple) -> TaskService:
    return TaskService(
        RuntimeConfig(policy="gtb-max", n_workers=n_workers, engine=engine),
        tenants=tenants,
        max_batch=4,
    )


def fig_serve(
    small: bool = False,
    n_workers: int = 16,
    engine: str = "simulated",
    budget_frac: float = 0.6,
    waves: int | None = None,
    b_jobs_per_wave: int = 2,
) -> ServeFigData:
    """Run the two-tenant isolation scenario (see module docstring).

    ``waves`` is the number of B submission rounds; A queues one job
    per wave up front.  Sizes shrink under ``small`` so the whole
    figure runs in seconds.
    """
    waves = waves if waves is not None else (10 if small else 20)
    # A = droppable Monte-Carlo batches (mode D: a degraded block costs
    # nothing), B = accurate Sobel, sized so even A's *budgeted* load
    # stays a small fraction of B's rounds.
    a_samples = 1000 if small else 4000
    b_size = 128 if small else 256
    a_args = [
        {"blocks": 8, "samples": a_samples, "seed": 2015 + w}
        for w in range(waves)
    ]

    # 1. Price A's stream: solo, unmetered, accurate.
    solo_a = _service(engine, n_workers, ("standard:name='a'",))
    with solo_a:
        for args in a_args:
            solo_a.submit(
                JobRequest(tenant="a", kernel="mc-pi", args=args)
            )
        while solo_a.pending_jobs:
            solo_a.flush()
        a_solo_energy = solo_a.tenants["a"].spent_j
    budget_j = budget_frac * a_solo_energy

    # 2. B's reference: solo service, streamed per wave.
    solo_b = _service(engine, n_workers, ("premium:name='b'",))
    b_solo_reports = []
    with solo_b:
        for wave in range(waves):
            for j in range(b_jobs_per_wave):
                b_solo_reports.append(
                    solo_b.submit(_b_request(b_size, wave, j))
                )
            solo_b.flush()
        while solo_b.pending_jobs:
            solo_b.flush()

    # 3. Shared run: A budgeted and queued up front, B streamed.
    shared = _service(
        engine,
        n_workers,
        (
            f"standard:name='a',budget_j={budget_j},max_pending=4096",
            "premium:name='b'",
        ),
    )
    a_reports: list[JobReport] = []
    b_shared_reports: list[JobReport] = []
    with shared:
        for args in a_args:
            a_reports.append(
                shared.submit(
                    JobRequest(tenant="a", kernel="mc-pi", args=args)
                )
            )
        for wave in range(waves):
            for j in range(b_jobs_per_wave):
                b_shared_reports.append(
                    shared.submit(_b_request(b_size, wave, j))
                )
            shared.flush()
        while shared.pending_jobs:
            shared.flush()
        tenant_stats = {
            name: state.summary()
            for name, state in shared.tenants.items()
        }

    return ServeFigData(
        engine=engine,
        budget_frac=budget_frac,
        a_budget_j=budget_j,
        a_solo_energy_j=a_solo_energy,
        tenant_stats=tenant_stats,
        a_reports=a_reports,
        b_solo_reports=b_solo_reports,
        b_shared_reports=b_shared_reports,
    )
