"""Fault-aware execution: significance-based protection on unreliable cores.

This realizes the paper's future-work scenario (section 6) on top of the
simulated machine: task executions on unreliable cores may silently
fail; the runtime can *protect* significant tasks the way ERSA protects
critical code — here via execute-and-verify with re-execution, whose
cost is charged to the schedule (a faithful first-order model of running
the task redundantly or on a reliable core).

Protection rule: tasks with ``significance >= protect_threshold`` are
protected (fault detected, task re-executed until clean, each attempt
paying full duration); less-significant tasks run unprotected — a fault
silently omits their effect, exactly the failure class approximate
programs are supposed to absorb.
"""

from __future__ import annotations

import time as _time
from typing import Callable

from ..registry import register, resolve
from ..runtime.errors import SchedulerError
from ..runtime.task import Task, TaskState
from ..sim.machine import SimulatedMachine
from ..runtime.engine import SimulatedEngine
from .model import FaultLog, FaultModel, FaultRecord

__all__ = [
    "FaultySimulatedMachine",
    "FaultAwareEngine",
    "faulty_engine",
    "faulty_scheduler",
]

#: Give up re-executing after this many faulty attempts (prevents the
#: pathological fault_rate=1.0 configuration from hanging).
MAX_ATTEMPTS = 8


class FaultySimulatedMachine(SimulatedMachine):
    """A simulated machine whose designated cores drop task effects."""

    def __init__(
        self,
        *args,
        fault_model: FaultModel | None = None,
        protect_threshold: float = 1.0,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.fault_model = fault_model or FaultModel()
        if not 0.0 <= protect_threshold <= 1.0:
            raise SchedulerError(
                f"protect_threshold must be in [0, 1], got "
                f"{protect_threshold}"
            )
        self.protect_threshold = protect_threshold
        self.fault_log = FaultLog()

    def _start_task(self, worker: int, task: Task, now: float) -> None:
        kind = self.policy.decide(task, worker)
        overhead = self.policy.decide_overhead_const
        if overhead is None:
            overhead = self.policy.decide_overhead(task)

        task.state = TaskState.RUNNING
        task.worker = worker
        task.t_started = now

        protected = task.significance >= self.protect_threshold
        attempts = 1
        key = task.group_seq if task.group_seq >= 0 else task.tid
        faulted = self.fault_model.draws_fault(
            worker, key, 0, group=task.group
        )
        if faulted and protected:
            # Detected by the verification harness: re-execute until a
            # clean attempt (bounded), paying for every attempt.
            while (
                attempts < MAX_ATTEMPTS
                and self.fault_model.draws_fault(
                    worker, key, attempts, group=task.group
                )
            ):
                attempts += 1
            attempts += 1  # the final clean attempt
            faulted = False

        host_t0 = _time.perf_counter()
        if faulted:
            # Omission fault: the body never takes effect.
            task.decision = kind
            task.result = None
            self.fault_log.add(
                FaultRecord(
                    task.tid, worker, now, task.significance, False
                )
            )
        else:
            if attempts > 1:
                self.fault_log.add(
                    FaultRecord(
                        task.tid, worker, now, task.significance, True
                    )
                )
            task.execute(kind)
        host_dt = _time.perf_counter() - host_t0
        self.accounting.add_host_seconds(host_dt)

        base = self.cost_model.duration(
            task, kind, self.machine_model, measured_wall=host_dt
        )
        duration = base * attempts + overhead * self._inv_ops
        self.busy[worker] = True
        self._idle.discard(worker)
        self.events.push(
            now + duration, self._finish_task, tag="finish", payload=task
        )


class FaultAwareEngine(SimulatedEngine):
    """Drop-in engine exposing the faulty machine to the scheduler.

    >>> model = FaultModel.split_machine(16, 0.5, fault_rate=0.05)
    >>> engine = FaultAwareEngine.build(
    ...     16, machine_model, cost_model, policy, on_finish,
    ...     fault_model=model, protect_threshold=0.7)
    >>> rt = Scheduler(policy=policy, n_workers=16, engine=engine)
    """

    def __init__(self, machine: FaultySimulatedMachine) -> None:
        # Bypass SimulatedEngine.__init__: we received a built machine.
        self.machine = machine

    @classmethod
    def build(
        cls,
        n_workers: int,
        machine_model,
        cost_model,
        policy,
        on_task_finished: Callable[[Task, float], None],
        stall_handler: Callable[[], bool] | None = None,
        fault_model: FaultModel | None = None,
        protect_threshold: float = 1.0,
    ) -> "FaultAwareEngine":
        machine = FaultySimulatedMachine(
            n_workers,
            machine_model,
            cost_model,
            policy,
            on_task_finished,
            stall_handler,
            fault_model=fault_model,
            protect_threshold=protect_threshold,
        )
        return cls(machine)

    @property
    def fault_log(self) -> FaultLog:
        return self.machine.fault_log  # type: ignore[attr-defined]


@register("engine", "faulty", "unreliable")
def faulty_engine(
    n_workers: int,
    machine_model,
    cost_model,
    policy,
    on_task_finished: Callable[[Task, float], None],
    stall_handler: Callable[[], bool] | None = None,
    *,
    unreliable_fraction: float = 0.5,
    fault_rate: float = 0.05,
    seed: int = 0,
    protect_threshold: float = 1.0,
) -> "FaultAwareEngine":
    """Registry factory: an ERSA-style split machine from scalar knobs.

    Makes the unreliable-hardware scenario a plain engine spec, e.g.
    ``engine="faulty:fault_rate=0.08,protect_threshold=0.7"``.
    """
    model = FaultModel.split_machine(
        n_workers, unreliable_fraction, fault_rate, seed
    )
    return FaultAwareEngine.build(
        n_workers,
        machine_model,
        cost_model,
        policy,
        on_task_finished,
        stall_handler,
        fault_model=model,
        protect_threshold=protect_threshold,
    )


def faulty_scheduler(
    policy,
    n_workers: int = 16,
    fault_model: FaultModel | None = None,
    protect_threshold: float = 1.0,
    machine=None,
    cost_model=None,
):
    """Convenience constructor: a Scheduler on a fault-injecting machine."""
    from ..energy.cost import HybridCost
    from ..energy.machine_model import XEON_E5_2650
    from ..runtime.scheduler import Scheduler

    policy = resolve("policy", policy)
    machine_model = (
        machine if machine is not None
        else XEON_E5_2650.with_workers(n_workers)
    )
    cm = cost_model if cost_model is not None else HybridCost()

    # Two-phase wiring: the engine needs the scheduler's callbacks, the
    # scheduler needs the engine.  Build the scheduler with a plain
    # engine first, then swap in the faulty machine reusing the same
    # callbacks (the scheduler only ever talks to the Engine interface).
    rt = Scheduler(
        policy=policy,
        n_workers=n_workers,
        machine=machine_model,
        cost_model=cm,
        engine="simulated",
    )
    engine = FaultAwareEngine.build(
        n_workers,
        machine_model,
        cm,
        policy,
        rt._on_task_finished,
        rt._on_stall,
        fault_model=fault_model,
        protect_threshold=protect_threshold,
    )
    rt.engine = engine
    return rt
