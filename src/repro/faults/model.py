"""Unreliable-hardware fault model (paper section 6, future work).

"We are also interested in extending our programming model to support
approximate computing on top of ultra low-power but unreliable
hardware."  The related-work discussion points at ERSA [Leem et al.,
DATE 2010], where critical code runs on fully reliable cores and
error-tolerant code on relaxed-reliability cores.

:class:`FaultModel` describes such a machine: a subset of cores is
*unreliable* — a task executed there suffers a silent fault with a
given per-execution probability.  Faults are **omission faults**: the
task body does not take effect (its outputs keep their prior/default
values), the silent-error mode that matters for approximate runtimes
(crashes would be detected; silent corruption is what quality metrics
must absorb).

Fault draws are deterministic: each (task id, attempt) pair hashes into
a counter-based RNG stream, so experiments replay bit-identically.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from ..runtime.errors import ReproError

__all__ = ["FaultModel", "FaultRecord", "FaultLog"]


class FaultConfigError(ReproError, ValueError):
    """Invalid fault-model configuration."""


@dataclass(frozen=True)
class FaultModel:
    """Which cores are unreliable, and how unreliable they are."""

    #: Core ids with relaxed reliability.
    unreliable_cores: frozenset[int] = frozenset()
    #: Probability that one task execution on an unreliable core
    #: silently fails (omission).
    fault_rate: float = 0.0
    #: Seed of the per-task fault streams.
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.fault_rate <= 1.0:
            raise FaultConfigError(
                f"fault_rate must be in [0, 1], got {self.fault_rate}"
            )
        if any(c < 0 for c in self.unreliable_cores):
            raise FaultConfigError("core ids must be non-negative")

    @classmethod
    def split_machine(
        cls, n_workers: int, unreliable_fraction: float,
        fault_rate: float, seed: int = 0,
    ) -> "FaultModel":
        """ERSA-style split: the last ``fraction`` of cores are relaxed."""
        if not 0.0 <= unreliable_fraction <= 1.0:
            raise FaultConfigError(
                f"unreliable_fraction must be in [0, 1], got "
                f"{unreliable_fraction}"
            )
        n_unreliable = int(round(n_workers * unreliable_fraction))
        cores = frozenset(
            range(n_workers - n_unreliable, n_workers)
        )
        return cls(
            unreliable_cores=cores, fault_rate=fault_rate, seed=seed
        )

    # ------------------------------------------------------------------
    def is_unreliable(self, worker: int) -> bool:
        return worker in self.unreliable_cores

    def draws_fault(
        self,
        worker: int,
        task_key: int,
        attempt: int = 0,
        group: str | None = None,
    ) -> bool:
        """Deterministic fault draw for one execution attempt.

        ``task_key`` must be stable across runs (the task's per-group
        sequence number, not the process-global task id), so replays of
        the same program observe identical fault patterns.
        """
        if not self.is_unreliable(worker) or self.fault_rate <= 0.0:
            return False
        group_key = zlib.crc32((group or "").encode("utf-8"))
        rng = np.random.default_rng(
            (self.seed, worker, group_key, task_key, attempt)
        )
        return bool(rng.random() < self.fault_rate)


@dataclass(frozen=True)
class FaultRecord:
    """One injected fault occurrence."""

    tid: int
    worker: int
    time: float
    significance: float
    protected: bool  # True when the runtime caught & re-executed it


@dataclass
class FaultLog:
    """All fault events of one run."""

    records: list[FaultRecord] = field(default_factory=list)

    def add(self, rec: FaultRecord) -> None:
        self.records.append(rec)

    @property
    def total(self) -> int:
        return len(self.records)

    @property
    def silent(self) -> int:
        """Faults that actually corrupted the output (unprotected)."""
        return sum(1 for r in self.records if not r.protected)

    @property
    def recovered(self) -> int:
        return sum(1 for r in self.records if r.protected)
