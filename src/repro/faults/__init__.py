"""Unreliable-hardware substrate (paper section 6, future work).

Silent omission faults on designated cores, with significance-driven
protection (execute-and-verify re-execution) for important tasks —
the ERSA-style scenario the paper names as the next step for the
programming model.

The fault machinery composes with the rest of the runtime rather than
forking it: :class:`FaultySimulatedMachine` subclasses the simulated
machine (so ticks, DVFS and the shared accounting core work
unchanged), the ``"faulty"`` engine spec drops into any
:class:`~repro.config.RuntimeConfig`, and
:func:`faulty_scheduler` is a convenience front for the common case.
Fault draws are deterministic per (worker, task, attempt) so
unreliable-hardware experiments replay bit-identically.
"""

from .engine import (
    FaultAwareEngine,
    FaultySimulatedMachine,
    faulty_engine,
    faulty_scheduler,
)
from .model import FaultLog, FaultModel, FaultRecord

__all__ = [
    "FaultModel",
    "FaultRecord",
    "FaultLog",
    "FaultySimulatedMachine",
    "FaultAwareEngine",
    "faulty_engine",
    "faulty_scheduler",
]
