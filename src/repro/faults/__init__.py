"""Unreliable-hardware substrate (paper section 6 future work).

Silent omission faults on designated cores, with significance-driven
protection (execute-and-verify re-execution) for important tasks —
the ERSA-style scenario the paper names as the next step for the
programming model.
"""

from .engine import (
    FaultAwareEngine,
    FaultySimulatedMachine,
    faulty_engine,
    faulty_scheduler,
)
from .model import FaultLog, FaultModel, FaultRecord

__all__ = [
    "FaultModel",
    "FaultRecord",
    "FaultLog",
    "FaultySimulatedMachine",
    "FaultAwareEngine",
    "faulty_engine",
    "faulty_scheduler",
]
