"""``fig-compile``: the compile tier's specialized-vs-interpreted figure.

One identical job stream per servable kernel is served twice through
:class:`~repro.serve.server.TaskService` — once interpreted
(``compile="off"``), once specialized (``compile="specialize"``) — and
the figure reports, per kernel, the jobs/s of both runs, the headline
speedup, the logical task count versus the chunk tasks actually
spawned, and a bit-parity verdict on outputs and admission counters
(the tier's contract: faster, never different).  A final profiled run
(``specialize:profile=true``) surfaces the shallow profiler's
per-callee timings.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..config import RuntimeConfig
from ..harness.report import format_table
from ..serve.server import JobReport, JobRequest, TaskService

__all__ = ["CompileFigData", "fig_compile"]

#: Kernels the figure streams, with per-job argument builders sized by
#: ``small``.
def _kernel_args(small: bool) -> dict[str, dict]:
    size = 64 if small else 128
    return {
        "sobel": {"size": size},
        "dct": {"size": size},
        "mc-pi": {"blocks": 16, "samples": 500 if small else 2000},
    }


@dataclass
class CompileFigData:
    """Raw numbers of one fig-compile run plus the rendered view."""

    engine: str
    n_jobs: int
    #: Per-kernel rows: jobs/s off/on, speedup, logical vs chunk tasks.
    kernels: dict[str, dict] = field(default_factory=dict)
    #: Compiled-body cache counters of the specialized service.
    cache_stats: dict = field(default_factory=dict)
    #: Per-callee shallow-profiler timings from the profiled run.
    profile: dict[str, dict] = field(default_factory=dict)

    @property
    def parity(self) -> bool:
        """Outputs and admission counters identical on every kernel."""
        return all(row["parity"] for row in self.kernels.values())

    def speedup(self, kernel: str) -> float:
        return self.kernels[kernel]["speedup"]

    def render(self) -> str:
        rows = []
        for name, r in self.kernels.items():
            rows.append(
                [
                    name,
                    r["jobs_per_s_off"],
                    r["jobs_per_s_on"],
                    r["speedup"],
                    r["logical_tasks"],
                    r["chunk_tasks"],
                    "yes" if r["parity"] else "NO",
                ]
            )
        sections = [
            format_table(
                [
                    "kernel", "jobs/s off", "jobs/s on", "speedup",
                    "logical tasks", "chunk tasks", "bit-parity",
                ],
                rows,
                title=(
                    f"[fig-compile] {self.n_jobs} jobs per kernel on "
                    f"'{self.engine}', compile=specialize vs off"
                ),
            )
        ]
        if self.profile:
            sections.append(
                format_table(
                    ["callee", "calls", "total (ms)", "mean (us)"],
                    [
                        [
                            callee,
                            rec["calls"],
                            rec["total_s"] * 1e3,
                            rec["mean_us"],
                        ]
                        for callee, rec in sorted(self.profile.items())
                    ],
                    title="shallow profiler (specialize:profile=true)",
                )
            )
        verdict = "PASS" if self.parity else "FAIL"
        sections.append(
            f"semantic transparency (outputs + admission counters): "
            f"{verdict}; compiled-body cache: "
            f"{self.cache_stats.get('compiles', 0)} compiles, "
            f"{self.cache_stats.get('hits', 0)} hits"
        )
        return "\n\n".join(sections)


def _stream(
    kernel: str,
    args_base: dict,
    n_jobs: int,
    compile_spec: str,
    n_workers: int,
    engine: str,
) -> tuple[list[JobReport], float, TaskService]:
    """Serve one kernel's job stream; returns (reports, wall_s, svc)."""
    svc = TaskService(
        RuntimeConfig(
            policy="gtb-max",
            n_workers=n_workers,
            engine=engine,
            compile=compile_spec,
        ),
        compute_quality=False,
    )
    reports = []
    t0 = time.perf_counter()
    with svc:
        for j in range(n_jobs):
            # Distinct seeds: the figure must measure serving, not the
            # approximate-result cache.
            reports.append(
                svc.submit(
                    JobRequest(
                        tenant="standard",
                        kernel=kernel,
                        args={**args_base, "seed": j},
                        ratio=0.7,
                    )
                )
            )
            svc.flush()
    wall = time.perf_counter() - t0
    return reports, wall, svc


def _outputs_equal(a, b) -> bool:
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return bool(np.array_equal(a, b))
    return a == b


def fig_compile(
    small: bool = False,
    n_workers: int = 16,
    engine: str = "simulated",
    n_jobs: int | None = None,
) -> CompileFigData:
    """Run the specialized-vs-interpreted comparison per kernel."""
    n_jobs = n_jobs if n_jobs is not None else (6 if small else 12)
    data = CompileFigData(engine=engine, n_jobs=n_jobs)

    for kernel, args_base in _kernel_args(small).items():
        off_reports, off_wall, _ = _stream(
            kernel, args_base, n_jobs, "off", n_workers, engine
        )
        on_reports, on_wall, svc = _stream(
            kernel, args_base, n_jobs, "specialize", n_workers, engine
        )
        parity = all(
            _outputs_equal(a.output, b.output)
            and (a.tasks_total, a.accurate, a.approximate, a.dropped)
            == (b.tasks_total, b.accurate, b.approximate, b.dropped)
            for a, b in zip(off_reports, on_reports)
        )
        chunk_tasks = sum(
            meta.get("n_chunks", 0) for meta in svc.job_meta.values()
        )
        data.kernels[kernel] = {
            "jobs_per_s_off": n_jobs / max(off_wall, 1e-12),
            "jobs_per_s_on": n_jobs / max(on_wall, 1e-12),
            "speedup": off_wall / max(on_wall, 1e-12),
            "logical_tasks": sum(r.tasks_total for r in on_reports),
            "chunk_tasks": chunk_tasks,
            "parity": parity,
        }
        data.cache_stats = svc._specializer.stats()

    # One profiled sobel stream for the per-callee timing table.
    from .specialize import clear_profile

    clear_profile()
    _, _, prof_svc = _stream(
        "sobel",
        _kernel_args(small)["sobel"],
        2,
        "specialize:profile=true",
        n_workers,
        engine,
    )
    for meta in prof_svc.job_meta.values():
        for callee, rec in meta.get("profile", {}).items():
            agg = data.profile.setdefault(
                callee, {"calls": 0, "total_s": 0.0, "mean_us": 0.0}
            )
            agg["calls"] += rec["calls"]
            agg["total_s"] += rec["total_s"]
    for rec in data.profile.values():
        if rec["calls"]:
            rec["mean_us"] = rec["total_s"] / rec["calls"] * 1e6
    return data
