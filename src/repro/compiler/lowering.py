"""Lowering: rewrite pragma-annotated Python into runtime calls.

This is the reproduction of the paper's source-to-source compiler
(SCOOP [Zakkak 2012]): "It recognizes the pragmas introduced by the
programmer and lowers them to corresponding calls of the runtime
system" (section 2).

Pipeline:

1. **Preprocess** (:func:`preprocess_source`): every pragma comment line
   is replaced *in place* (same line count, so tracebacks stay aligned)
   by a marker call — ``__repro_pragma__(<directive-index>)`` — because
   comments do not survive ``ast.parse``.
2. **Transform** (:class:`PragmaLowerer`): an AST pass replaces each
   marker according to its directive:

   * ``task`` markers fuse with the *next* sibling statement, which must
     be a plain call ``f(args...)`` (the task body invocation, as in
     Listing 1), producing
     ``__repro_spawn__(f, args..., significance=..., approxfun=...,
     label=..., in_=(...), out=(...), cost=...)``;
   * ``taskwait`` markers become
     ``__repro_taskwait__(label=..., on=..., ratio=...)``.

3. **Compile/exec** with the two helpers injected; they resolve the
   ambient :class:`repro.api.Runtime` at call time, exactly like the
   lowered C calls resolve the linked runtime.

The user-facing entry point is the :func:`pragma_compile` decorator.
"""

from __future__ import annotations

import ast
import functools
import inspect
import textwrap
from typing import Any, Callable

from ..api.context import current_runtime
from ..runtime.errors import LoweringError
from .directives import Directive, TaskDirective, TaskwaitDirective
from .parser import is_pragma, parse_directive

__all__ = [
    "preprocess_source",
    "PragmaLowerer",
    "lower_source",
    "compile_pragmas",
    "pragma_compile",
]

_MARKER = "__repro_pragma__"
_SPAWN = "__repro_spawn__"
_TASKWAIT = "__repro_taskwait__"


def _statement_indent(lines: list[str], start: int) -> str | None:
    """Indentation of the next non-blank, non-pragma source line.

    A pragma is a Python comment, so the programmer may leave it at any
    column (column 0 inside an indented body is common after an editor
    dedent); the marker that replaces it must sit at the *annotated
    statement's* indentation or the rewritten module will not parse.
    Returns ``None`` when no statement follows.
    """
    j = start
    while j < len(lines):
        nxt = lines[j]
        if not nxt.strip():
            j += 1
            continue
        if is_pragma(nxt):
            while nxt.rstrip().endswith("\\") and j + 1 < len(lines):
                j += 1
                nxt = lines[j]
            j += 1
            continue
        return nxt[: len(nxt) - len(nxt.lstrip())]
    return None


def preprocess_source(source: str) -> tuple[str, list[Directive]]:
    """Replace pragma comments with marker calls; collect directives.

    Pragma line continuations (trailing backslash) are folded into the
    directive; the continuation lines become ``pass``-equivalent blank
    markers (kept blank to preserve line numbering).  Each marker takes
    the deeper of the pragma's own indentation and the annotated
    statement's, so mis-indented pragmas still lower correctly.
    """
    lines = source.splitlines()
    directives: list[Directive] = []
    out_lines = list(lines)
    i = 0
    while i < len(lines):
        line = lines[i]
        if is_pragma(line):
            start = i
            text = line
            blank: list[int] = []
            while text.rstrip().endswith("\\") and i + 1 < len(lines):
                i += 1
                cont = lines[i].lstrip()
                text = text.rstrip()[:-1] + " " + cont.lstrip("#").strip()
                blank.append(i)
            directive = parse_directive(text, line=start + 1)
            directives.append(directive)
            own = line[: len(line) - len(line.lstrip())]
            stmt = _statement_indent(lines, i + 1)
            indent = (
                stmt
                if stmt is not None and len(stmt) > len(own)
                else own
            )
            out_lines[start] = (
                f"{indent}{_MARKER}({len(directives) - 1})"
            )
            for b in blank:
                out_lines[b] = ""
        i += 1
    return "\n".join(out_lines), directives


def _expr(src: str, line: int) -> ast.expr:
    """Parse a clause expression string into an AST expression node."""
    try:
        node = ast.parse(src, mode="eval").body
    except SyntaxError as e:  # pragma: no cover - validated earlier
        raise LoweringError(
            f"clause expression {src!r} failed to parse: {e}"
        ) from e
    for sub in ast.walk(node):
        sub.lineno = line
        sub.col_offset = 0
        sub.end_lineno = line
        sub.end_col_offset = 0
    return node


class PragmaLowerer(ast.NodeTransformer):
    """AST pass fusing pragma markers with their annotated statements."""

    def __init__(self, directives: list[Directive]) -> None:
        self.directives = directives

    # Every statement-list owner goes through _rewrite_block.
    def _rewrite_block(self, body: list[ast.stmt]) -> list[ast.stmt]:
        out: list[ast.stmt] = []
        i = 0
        while i < len(body):
            stmt = body[i]
            idx = self._marker_index(stmt)
            if idx is None:
                out.append(self.visit(stmt))
                i += 1
                continue
            directive = self.directives[idx]
            if isinstance(directive, TaskwaitDirective):
                out.append(self._lower_taskwait(directive, stmt))
                i += 1
            else:
                if i + 1 >= len(body):
                    raise LoweringError(
                        f"'#pragma omp task' at line {directive.line} is "
                        "not followed by a statement"
                    )
                target = body[i + 1]
                out.append(self._lower_task(directive, target))
                i += 2
        return out

    @staticmethod
    def _marker_index(stmt: ast.stmt) -> int | None:
        if (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Call)
            and isinstance(stmt.value.func, ast.Name)
            and stmt.value.func.id == _MARKER
        ):
            arg = stmt.value.args[0]
            assert isinstance(arg, ast.Constant)
            return int(arg.value)
        return None

    # -- directive lowerings -------------------------------------------
    def _lower_task(
        self, d: TaskDirective, target: ast.stmt
    ) -> ast.stmt:
        if not (
            isinstance(target, ast.Expr)
            and isinstance(target.value, ast.Call)
        ):
            raise LoweringError(
                f"'#pragma omp task' at line {d.line} must annotate a "
                "plain call statement (the task body invocation), got "
                f"{ast.dump(target)[:60]}..."
            )
        call = target.value
        line = target.lineno
        kw: list[ast.keyword] = []
        if d.significant is not None:
            kw.append(
                ast.keyword("significance", _expr(d.significant, line))
            )
        if d.approxfun is not None:
            kw.append(ast.keyword("approxfun", _expr(d.approxfun, line)))
        if d.label is not None:
            kw.append(ast.keyword("label", ast.Constant(d.label)))
        if d.ins:
            kw.append(
                ast.keyword(
                    "in_",
                    ast.Tuple(
                        [_expr(e, line) for e in d.ins], ast.Load()
                    ),
                )
            )
        if d.outs:
            kw.append(
                ast.keyword(
                    "out",
                    ast.Tuple(
                        [_expr(e, line) for e in d.outs], ast.Load()
                    ),
                )
            )
        if d.cost is not None:
            kw.append(ast.keyword("cost", _expr(d.cost, line)))
        spawn = ast.Call(
            func=ast.Name(_SPAWN, ast.Load()),
            args=[call.func, *call.args],
            keywords=[*call.keywords, *kw],
        )
        new = ast.Expr(spawn)
        ast.copy_location(new, target)
        ast.fix_missing_locations(new)
        return new

    def _lower_taskwait(
        self, d: TaskwaitDirective, marker: ast.stmt
    ) -> ast.stmt:
        if d.label is not None and d.on is not None:
            raise LoweringError(
                f"'#pragma omp taskwait' at line {d.line} combines "
                "label(...) and on(...); wait on a group or on a data "
                "object, not both"
            )
        line = marker.lineno
        kw: list[ast.keyword] = []
        if d.label is not None:
            kw.append(ast.keyword("label", ast.Constant(d.label)))
        if d.on is not None:
            kw.append(ast.keyword("on", _expr(d.on, line)))
        if d.ratio is not None:
            kw.append(ast.keyword("ratio", _expr(d.ratio, line)))
        call = ast.Call(
            func=ast.Name(_TASKWAIT, ast.Load()), args=[], keywords=kw
        )
        new = ast.Expr(call)
        ast.copy_location(new, marker)
        ast.fix_missing_locations(new)
        return new

    # -- plumb _rewrite_block through all block-bearing nodes ----------
    def generic_visit(self, node: ast.AST) -> ast.AST:
        for field in ("body", "orelse", "finalbody"):
            block = getattr(node, field, None)
            if isinstance(block, list) and block and isinstance(
                block[0], ast.stmt
            ):
                setattr(node, field, self._rewrite_block(block))
        for field, value in ast.iter_fields(node):
            if field in ("body", "orelse", "finalbody"):
                continue
            if isinstance(value, list):
                for item in value:
                    if isinstance(item, ast.AST):
                        self.visit(item)
            elif isinstance(value, ast.AST):
                self.visit(value)
        return node


def lower_source(source: str, filename: str = "<pragma>") -> ast.Module:
    """Full front-end: pragma scan + parse + AST lowering.

    Pragmas are scanned *before* dedenting: a column-0 pragma comment
    inside an indented body would otherwise defeat ``textwrap.dedent``
    (comment lines count toward the common margin), leaving the whole
    source indented and unparsable.
    """
    processed, directives = preprocess_source(source)
    tree = ast.parse(textwrap.dedent(processed), filename=filename)
    PragmaLowerer(directives).visit(tree)
    ast.fix_missing_locations(tree)
    return tree


def _spawn_helper(fn: Callable, *args: Any, **kwargs: Any):
    """Injected as ``__repro_spawn__``: spawn on the ambient runtime."""
    return current_runtime().spawn(fn, *args, **kwargs)


def _taskwait_helper(**kwargs: Any):
    """Injected as ``__repro_taskwait__``."""
    return current_runtime().taskwait(**kwargs)


def compile_pragmas(
    source: str,
    globals_: dict | None = None,
    filename: str = "<pragma>",
) -> dict:
    """Compile pragma-annotated module source; return its namespace."""
    tree = lower_source(source, filename)
    ns: dict = {} if globals_ is None else dict(globals_)
    ns[_SPAWN] = _spawn_helper
    ns[_TASKWAIT] = _taskwait_helper
    exec(compile(tree, filename, "exec"), ns)  # noqa: S102 - by design
    return ns


def pragma_compile(fn: Callable) -> Callable:
    """Decorator: recompile a function whose body contains pragmas.

    >>> @pragma_compile
    ... def program(img, res):
    ...     for i in range(1, img.shape[0] - 1):
    ...         #pragma omp task label(sobel) in(img) \
    ...                 significant((i%9+1)/10.0) approxfun(row_approx)
    ...         row_accurate(res, img, i)
    ...     #pragma omp taskwait label(sobel) ratio(0.35)

    The rewritten function spawns tasks on the ambient
    :class:`repro.api.Runtime`.  The original (pragmas-as-comments,
    i.e. serial) behaviour remains available as ``program.original``.
    """
    try:
        source = inspect.getsource(fn)
    except (OSError, TypeError) as e:
        raise LoweringError(
            f"cannot fetch source of {fn!r} (defined interactively?)"
        ) from e
    # Dedenting waits until after the pragma scan (see lower_source) so
    # column-0 pragmas inside nested/method bodies survive.  Drop
    # decorator lines so exec doesn't recurse into pragma_compile.
    lines = source.splitlines()
    start = 0
    while start < len(lines) and not lines[start].lstrip().startswith(
        ("def ", "async def ")
    ):
        start += 1
    if start == len(lines):
        raise LoweringError(f"no function definition found in {fn!r}")
    body_src = "\n".join(lines[start:])
    ns = compile_pragmas(
        body_src,
        globals_=fn.__globals__,
        filename=f"<pragma:{getattr(fn, '__name__', '?')}>",
    )
    new_fn = ns[fn.__name__]
    functools.update_wrapper(new_fn, fn)
    new_fn.original = fn  # type: ignore[attr-defined]
    return new_fn
