"""Parser for ``#pragma omp`` directive comments.

A directive is a Python comment of the form::

    #pragma omp task significant((i%9+1)/10.0) approxfun(appr) \
        label(sobel) in(img) out(ref(res, region=i))

Clause arguments are balanced-parenthesis Python expressions, so the
parser cannot just split on whitespace; it scans clause keywords and
extracts each argument by bracket counting (respecting string literals).
"""

from __future__ import annotations

import re

from ..runtime.errors import DirectiveSyntaxError
from .directives import (
    TASK_CLAUSES,
    TASKWAIT_CLAUSES,
    Directive,
    TaskDirective,
    TaskwaitDirective,
)

__all__ = ["is_pragma", "parse_directive", "scan_pragmas", "split_arguments"]

#: A pragma comment: '#' optionally followed by spaces, then 'pragma omp'.
_PRAGMA_RE = re.compile(r"^\s*#\s*pragma\s+omp\b(?P<rest>.*)$")


def is_pragma(line: str) -> bool:
    """Does this source line hold a ``#pragma omp`` directive?"""
    return _PRAGMA_RE.match(line) is not None


def _extract_parenthesized(text: str, start: int, line: int) -> tuple[str, int]:
    """Return the balanced ``(...)`` body starting at ``text[start]``."""
    if start >= len(text) or text[start] != "(":
        raise DirectiveSyntaxError(
            f"expected '(' after clause keyword near {text[start:start+20]!r}",
            line,
        )
    depth = 0
    in_str: str | None = None
    for i in range(start, len(text)):
        ch = text[i]
        if in_str is not None:
            if ch == in_str and text[i - 1] != "\\":
                in_str = None
            continue
        if ch in "'\"":
            in_str = ch
        elif ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth == 0:
                return text[start + 1 : i], i + 1
    raise DirectiveSyntaxError(
        f"unbalanced parentheses in clause near {text[start:start+30]!r}",
        line,
    )


def split_arguments(body: str, line: int | None = None) -> list[str]:
    """Split a clause body on top-level commas (``in(a, b)`` -> 2 args)."""
    args: list[str] = []
    depth = 0
    in_str: str | None = None
    current: list[str] = []
    for i, ch in enumerate(body):
        if in_str is not None:
            current.append(ch)
            if ch == in_str and (i == 0 or body[i - 1] != "\\"):
                in_str = None
            continue
        if ch in "'\"":
            in_str = ch
            current.append(ch)
        elif ch in "([{":
            depth += 1
            current.append(ch)
        elif ch in ")]}":
            depth -= 1
            if depth < 0:
                raise DirectiveSyntaxError(
                    f"unbalanced brackets in clause body {body!r}", line
                )
            current.append(ch)
        elif ch == "," and depth == 0:
            args.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        args.append(tail)
    return [a for a in args if a]


_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


def _parse_clauses(
    rest: str, allowed: tuple[str, ...], line: int
) -> dict[str, str]:
    """Scan ``keyword(...)`` clauses from the directive tail."""
    out: dict[str, str] = {}
    i = 0
    n = len(rest)
    while i < n:
        if rest[i].isspace():
            i += 1
            continue
        m = _IDENT_RE.match(rest, i)
        if not m:
            raise DirectiveSyntaxError(
                f"unexpected characters in directive: {rest[i:i+20]!r}",
                line,
            )
        kw = m.group(0)
        if kw not in allowed:
            raise DirectiveSyntaxError(
                f"unknown clause {kw!r}; expected one of {allowed}", line
            )
        if kw in out:
            raise DirectiveSyntaxError(f"duplicate clause {kw!r}", line)
        j = m.end()
        while j < n and rest[j].isspace():
            j += 1
        body, j = _extract_parenthesized(rest, j, line)
        out[kw] = body.strip()
        i = j
    return out


def _label_value(raw: str, line: int) -> str:
    """Labels are bare identifiers (Listing 1: ``label(sobel)``) or
    quoted strings."""
    s = raw.strip()
    if (
        len(s) >= 2
        and s[0] in "'\""
        and s[-1] == s[0]
    ):
        return s[1:-1]
    if not _IDENT_RE.fullmatch(s):
        raise DirectiveSyntaxError(
            f"label must be an identifier or string, got {s!r}", line
        )
    return s


def parse_directive(text: str, line: int = 0) -> Directive:
    """Parse one pragma comment into a directive object."""
    m = _PRAGMA_RE.match(text)
    if not m:
        raise DirectiveSyntaxError(f"not a '#pragma omp' line: {text!r}", line)
    rest = m.group("rest").strip()
    m2 = _IDENT_RE.match(rest)
    if not m2:
        raise DirectiveSyntaxError(
            "expected 'task' or 'taskwait' after '#pragma omp'", line
        )
    head = m2.group(0)
    tail = rest[m2.end():]
    if head == "task":
        clauses = _parse_clauses(tail, TASK_CLAUSES, line)
        d = TaskDirective(
            line=line,
            significant=clauses.get("significant"),
            approxfun=clauses.get("approxfun"),
            label=(
                _label_value(clauses["label"], line)
                if "label" in clauses
                else None
            ),
            ins=split_arguments(clauses.get("in", ""), line),
            outs=split_arguments(clauses.get("out", ""), line),
            cost=clauses.get("cost"),
        )
        return d.validate()
    if head == "taskwait":
        clauses = _parse_clauses(tail, TASKWAIT_CLAUSES, line)
        d2 = TaskwaitDirective(
            line=line,
            on=clauses.get("on"),
            label=(
                _label_value(clauses["label"], line)
                if "label" in clauses
                else None
            ),
            ratio=clauses.get("ratio"),
        )
        return d2.validate()
    raise DirectiveSyntaxError(
        f"unknown directive {head!r}; expected 'task' or 'taskwait'", line
    )


def scan_pragmas(source: str) -> list[Directive]:
    """Find and parse every pragma in a source string.

    Line continuations (``\\`` at end of a pragma line) are honoured so
    multi-line pragmas like Listing 1's work.
    """
    lines = source.splitlines()
    directives: list[Directive] = []
    i = 0
    while i < len(lines):
        line = lines[i]
        start = i
        if is_pragma(line):
            text = line
            while text.rstrip().endswith("\\") and i + 1 < len(lines):
                i += 1
                text = text.rstrip()[:-1] + " " + lines[i].lstrip().lstrip("#")
            directives.append(parse_directive(text, line=start + 1))
        i += 1
    return directives
