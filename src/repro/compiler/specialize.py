"""Significance-aware kernel specialization: the compile tier.

The pragma front-end (:mod:`repro.compiler.lowering`) reproduces the
paper's SCOOP compiler faithfully — and inherits its cost: every task
carries the significance branch (classify, stamp, dispatch accurate or
approximate) through the runtime per element.  This module compiles
that branch *away* for a concrete :class:`SpecializationSpec`
``(ratio, dvfs_factor)``:

1. **Fold the decision.**  :func:`decide_kinds` replays the GTB
   Max-Buffer flush (sort by significance, ``ceil(ratio * n)`` quota,
   forced 1.0/0.0 values) over the batch's significance vector at
   specialization time, yielding one
   :class:`~repro.runtime.task.ExecutionKind` per element — the
   runtime's per-task decision, made once on the master.
2. **Inline the chosen variant.**  Each element's accurate or
   approximate body is known, so elements partition into homogeneous
   *chunks*; :func:`compile_chunk_body` emits a branch-free loop per
   variant — genuinely inlining simple module-level bodies into the
   loop (the pypragma unroll/inline/collapse move) and falling back to
   a direct-call loop otherwise — and compiles it once.
3. **Cache per spec.**  Compiled bodies land in a
   :class:`SpecializationCache` keyed like the approximate-result
   cache — ``(kernel, spec)`` plus the variant's code fingerprint, so
   editing a kernel body invalidates its entry — with LRU bounds and
   explicit :meth:`~SpecializationCache.invalidate`.
4. **Ship a handle, not code.**  :class:`SpecializedBody` pickles as a
   compact ``(kernel, variant-ref, profile)`` handle;
   ``ProcessPoolEngine`` workers rebuild (and cache) the compiled loop
   locally instead of re-lowering per task.

A :class:`SpecializedPlan` packages the chunks for
``Scheduler.spawn_specialized``: every chunk spawns as one forced-
accurate task whose :class:`~repro.runtime.task.TaskCost` is the sum
of its members' decided-kind work (scaled by ``1 / dvfs_factor``), so
the energy/time accounting matches the interpreted run while the
per-task runtime overhead collapses to per-chunk.

**Shallow profiling** (``"specialize:profile=true"``) is the
recompyle move: the emitted loop wraps every inner call of the
specialized body with monotonic-clock timestamps, accumulating
per-callee call counts and total seconds in a process registry
(:func:`profile_snapshot`).  The serve layer lands the snapshot in the
chrome-trace ``group_meta`` — production-grade visibility at <5%
overhead, versus full per-task tracing.
"""

from __future__ import annotations

import ast
import hashlib
import importlib
import inspect
import math
import textwrap
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable

from ..registry import register
from ..runtime.errors import CompilerError, ConfigError
from ..runtime.task import ExecutionKind, TaskCost

__all__ = [
    "SpecializationSpec",
    "decide_kinds",
    "SpecializedBody",
    "SpecializedPlan",
    "ChunkBatch",
    "SpecializationCache",
    "SpecializationError",
    "KernelSpecializer",
    "compile_chunk_body",
    "profile_snapshot",
    "clear_profile",
]


class SpecializationError(CompilerError):
    """A kernel body could not be specialized."""


# ----------------------------------------------------------------------
# The spec: one point of the (ratio, dvfs) plane
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SpecializationSpec:
    """One concrete point the compile tier folds a kernel for.

    ``ratio`` is the group's accurate-task ratio (the Table 1 knob);
    ``dvfs_factor`` the frequency multiplier the chunk is compiled to
    run at — work units scale by its inverse, matching the DVFS
    actuation path of the governor.
    """

    ratio: float = 1.0
    dvfs_factor: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.ratio <= 1.0:
            raise ConfigError(
                f"specialization ratio must be in [0, 1], got {self.ratio}"
            )
        if not self.dvfs_factor > 0.0:
            raise ConfigError(
                f"dvfs_factor must be > 0, got {self.dvfs_factor}"
            )

    @property
    def key(self) -> tuple[float, float]:
        """Quantized cache identity (the result cache's ratio levels)."""
        return (round(self.ratio, 2), round(self.dvfs_factor, 3))


# ----------------------------------------------------------------------
# Decision folding: the GTB Max-Buffer flush, replayed at compile time
# ----------------------------------------------------------------------
def decide_kinds(
    significances: list[float],
    droppable: bool,
    ratio: float,
) -> list[ExecutionKind]:
    """Constant-fold the significance branch for one task batch.

    Replays :meth:`~repro.runtime.policies.gtb.GlobalTaskBuffering._flush`
    exactly — stable sort on raw significance (descending),
    ``ceil(ratio * n)`` accurate quota, forced ``>= 1.0`` tasks consume
    quota, forced ``<= 0.0`` tasks never do, and an element denied
    accuracy is ``APPROXIMATE`` (or ``DROPPED`` when the batch has no
    approximate variant, the paper's D mode).  The returned vector is
    aligned with spawn order, which is what makes a specialized run
    bit-identical to the interpreted GTB-max run.
    """
    n = len(significances)
    kinds: list[ExecutionKind | None] = [None] * n
    order = sorted(
        range(n), key=lambda i: significances[i], reverse=True
    )
    quota = math.ceil(ratio * n - 1e-12)
    denied = (
        ExecutionKind.DROPPED if droppable else ExecutionKind.APPROXIMATE
    )
    accurate = 0
    for i in order:
        sig = significances[i]
        if sig >= 1.0:
            kinds[i] = ExecutionKind.ACCURATE
            accurate += 1
        elif sig <= 0.0:
            kinds[i] = denied
        elif accurate < quota:
            kinds[i] = ExecutionKind.ACCURATE
            accurate += 1
        else:
            kinds[i] = denied
    return kinds  # type: ignore[return-value]


# ----------------------------------------------------------------------
# The shallow profiler registry (recompyle-style call wrapping)
# ----------------------------------------------------------------------
_prof_lock = threading.Lock()
#: ``(kernel, callee) -> {"calls", "total_s"}`` accumulated by profiled
#: chunk loops; drained by :func:`profile_snapshot`.
_profile: dict[tuple[str, str], dict[str, float]] = {}


def _profile_record(kernel: str, callee: str, calls: int, total_s: float):
    with _prof_lock:
        rec = _profile.get((kernel, callee))
        if rec is None:
            rec = _profile[(kernel, callee)] = {
                "calls": 0, "total_s": 0.0,
            }
        rec["calls"] += calls
        rec["total_s"] += total_s


def profile_snapshot(
    kernel: str | None = None, clear: bool = False
) -> dict[str, dict[str, float]]:
    """Per-callee timings of every profiled specialized body.

    Returns ``{callee: {"calls", "total_s", "mean_us"}}`` (keys are
    ``"kernel.callee"`` when ``kernel`` is None).  ``clear=True``
    drains the returned records, so successive snapshots window the
    runs between them — the serve layer attributes one round's calls
    to that round's jobs this way.
    """
    out: dict[str, dict[str, float]] = {}
    with _prof_lock:
        for (k, callee), rec in list(_profile.items()):
            if kernel is not None and k != kernel:
                continue
            name = callee if kernel is not None else f"{k}.{callee}"
            calls = int(rec["calls"])
            out[name] = {
                "calls": calls,
                "total_s": rec["total_s"],
                "mean_us": (
                    rec["total_s"] / calls * 1e6 if calls else 0.0
                ),
            }
            if clear:
                del _profile[(k, callee)]
    return out


def clear_profile() -> None:
    """Drop every accumulated profile record."""
    with _prof_lock:
        _profile.clear()


# ----------------------------------------------------------------------
# Variant loop codegen: inline when possible, call otherwise
# ----------------------------------------------------------------------
def _variant_ref(fn: Callable) -> tuple[str, str]:
    """Importable identity of a variant body (the pickle handle)."""
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", None)
    if not module or not qualname or "<" in qualname:
        raise SpecializationError(
            f"cannot specialize {fn!r}: the body must be an importable "
            "module-level function (lambdas and locals cannot be "
            "rebuilt in worker processes)"
        )
    return (module, qualname)


def _resolve_ref(ref: tuple[str, str]) -> Callable:
    module, qualname = ref
    obj: Any = importlib.import_module(module)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    return obj


def _fingerprint(fn: Callable) -> str:
    """Content hash of a body's compiled code — edits invalidate."""
    code = getattr(fn, "__code__", None)
    if code is None:
        return repr(fn)
    return hashlib.sha256(
        code.co_code + repr(code.co_consts).encode()
    ).hexdigest()[:16]


class _LocalRenamer(ast.NodeTransformer):
    """Prefix a function body's local names so it pastes into a loop."""

    def __init__(self, names: set[str], prefix: str) -> None:
        self.names = names
        self.prefix = prefix

    def visit_Name(self, node: ast.Name) -> ast.Name:
        if node.id in self.names:
            node.id = self.prefix + node.id
        return node


def _local_names(fdef: ast.FunctionDef) -> set[str]:
    """Names bound inside the body (params + simple assignments)."""
    names = {a.arg for a in fdef.args.args}
    for node in ast.walk(fdef):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for t in targets:
                for sub in ast.walk(t):
                    if isinstance(sub, ast.Name):
                        names.add(sub.id)
        elif isinstance(node, (ast.For, ast.comprehension)):
            for sub in ast.walk(node.target):
                if isinstance(sub, ast.Name):
                    names.add(sub.id)
        elif isinstance(node, ast.NamedExpr):
            if isinstance(node.target, ast.Name):
                names.add(node.target.id)
    return names


def _inlinable_fdef(fn: Callable) -> ast.FunctionDef | None:
    """The body's AST when it is simple enough to inline, else None.

    Inlinable: a plain module-level ``def`` with simple positional
    parameters, no decorators, no nested defs/yields/global/nonlocal,
    and at most one ``return`` sitting as the final statement.
    """
    try:
        source = textwrap.dedent(inspect.getsource(fn))
        tree = ast.parse(source)
    except (OSError, TypeError, SyntaxError):
        return None
    if len(tree.body) != 1 or not isinstance(
        tree.body[0], ast.FunctionDef
    ):
        return None
    fdef = tree.body[0]
    a = fdef.args
    if (
        fdef.decorator_list
        or a.vararg
        or a.kwarg
        or a.kwonlyargs
        or a.posonlyargs
        or a.defaults
    ):
        return None
    banned = (
        ast.Yield,
        ast.YieldFrom,
        ast.Global,
        ast.Nonlocal,
        ast.FunctionDef,
        ast.AsyncFunctionDef,
        ast.ClassDef,
        ast.Await,
    )
    returns = []
    for stmt in fdef.body:
        for node in ast.walk(stmt):
            if isinstance(node, banned):
                return None
            if isinstance(node, ast.Return):
                returns.append(node)
    if len(returns) > 1:
        return None
    if returns and fdef.body[-1] is not returns[0]:
        return None
    return fdef


_CHUNK_NAME = "__specialized_chunk__"


def _loop_module(
    fn: Callable, kernel: str, profile: bool
) -> tuple[ast.Module, dict[str, Any], bool]:
    """Build the chunk-loop module AST for one variant body.

    Returns ``(module, extra_globals, inlined)``.  The non-profiled
    path tries genuine inlining (unrolling the call frame away); the
    profiled path always keeps the call — that *is* the probe point
    the recompyle-style wrapper times.
    """
    callee = getattr(fn, "__name__", "body")
    extra: dict[str, Any] = {"__body__": fn}
    fdef = None if profile else _inlinable_fdef(fn)
    if fdef is not None:
        prefix = "__sp_"
        names = _local_names(fdef)
        body = [
            _LocalRenamer(names, prefix).visit(stmt)
            for stmt in fdef.body
        ]
        # Drop a leading docstring statement.
        if (
            body
            and isinstance(body[0], ast.Expr)
            and isinstance(body[0].value, ast.Constant)
            and isinstance(body[0].value.value, str)
        ):
            body = body[1:]
        if body and isinstance(body[-1], ast.Return):
            ret = body[-1].value or ast.Constant(None)
            body = body[:-1]
        else:
            ret = ast.Constant(None)
        params = ", ".join(
            prefix + a.arg for a in fdef.args.args
        ) or "_"
        unpack = ast.parse(
            f"({params},) = __args__"
            if len(fdef.args.args) != 1
            else f"{params}, = __args__"
        ).body[0]
        loop_body = [unpack, *body, ast.Expr(
            ast.Call(
                ast.Name("__append__", ast.Load()), [ret], []
            )
        )]
        inlined = True
    else:
        loop_body = [
            ast.parse("__append__(__body__(*__args__))").body[0]
        ]
        inlined = False

    if profile:
        loop_body = ast.parse(
            "__t0__ = __perf__()\n"
            "__r__ = __body__(*__args__)\n"
            "__total__ += __perf__() - __t0__\n"
            "__append__(__r__)"
        ).body
        prologue = "__total__ = 0.0\n"
        epilogue = (
            "    __record__(__kernel__, __callee__, "
            "len(members), __total__)\n"
        )
        extra.update(
            __perf__=time.perf_counter,
            __record__=_profile_record,
            __kernel__=kernel,
            __callee__=callee,
        )
    else:
        prologue = ""
        epilogue = ""

    shell = (
        f"def {_CHUNK_NAME}(members, cid):\n"
        f"    {prologue or 'pass'}\n"
        "    __out__ = []\n"
        "    __append__ = __out__.append\n"
        "    for __args__ in members:\n"
        "        pass\n"
        f"{epilogue}"
        "    return __out__\n"
    )
    module = ast.parse(shell)
    fn_def = module.body[0]
    assert isinstance(fn_def, ast.FunctionDef)
    if not prologue:
        fn_def.body = fn_def.body[1:]  # drop the placeholder pass
    for stmt in fn_def.body:
        if isinstance(stmt, ast.For):
            stmt.body = loop_body
    ast.fix_missing_locations(module)
    return module, extra, inlined


def compile_chunk_body(
    fn: Callable, kernel: str, profile: bool = False
) -> tuple[Callable, bool]:
    """Compile the branch-free chunk loop for one variant body.

    Returns ``(loop_fn, inlined)`` where ``loop_fn(members, cid)``
    runs ``fn`` (inlined when possible) over every member argument
    tuple and returns the results in order.
    """
    module, extra, inlined = _loop_module(fn, kernel, profile)
    ns = dict(getattr(fn, "__globals__", {}) or {})
    ns.update(extra)
    filename = (
        f"<specialize:{kernel}:{getattr(fn, '__name__', 'body')}"
        f"{':profiled' if profile else ''}>"
    )
    code = compile(module, filename, "exec")
    exec(code, ns)  # noqa: S102 - the compile tier's whole point
    return ns[_CHUNK_NAME], inlined


# ----------------------------------------------------------------------
# The picklable compiled body
# ----------------------------------------------------------------------
#: Worker-process-local rebuild cache: a forked/spawned worker compiles
#: each (kernel, variant, profile) loop once, then reuses it for every
#: chunk of every round — the "reuse instead of re-lowering" half of
#: the pickle-safe handle.
_REBUILD_CACHE: dict[tuple, "SpecializedBody"] = {}
_rebuild_lock = threading.Lock()


def _rebuild_body(
    kernel: str, ref: tuple[str, str], profile: bool
) -> "SpecializedBody":
    key = (kernel, ref, profile)
    body = _REBUILD_CACHE.get(key)
    if body is None:
        with _rebuild_lock:
            body = _REBUILD_CACHE.get(key)
            if body is None:
                body = SpecializedBody(kernel, _resolve_ref(ref), profile)
                _REBUILD_CACHE[key] = body
    return body


class SpecializedBody:
    """One compiled chunk executor: callable, picklable by handle.

    ``body(members, cid)`` runs the specialized loop over ``members``
    (a sequence of per-element argument tuples) and returns the
    element results in order.  Pickling ships only
    ``(kernel, variant-ref, profile)``; workers rebuild through
    :func:`_rebuild_body`'s process-local cache.
    """

    __slots__ = ("kernel", "ref", "profile", "inlined", "_loop")

    def __init__(
        self, kernel: str, fn: Callable, profile: bool = False
    ) -> None:
        self.kernel = kernel
        self.ref = _variant_ref(fn)
        self.profile = profile
        self._loop, self.inlined = compile_chunk_body(
            fn, kernel, profile
        )

    @property
    def __name__(self) -> str:
        mode = "profiled" if self.profile else (
            "inlined" if self.inlined else "call"
        )
        return f"specialized[{self.kernel}:{self.ref[1]}:{mode}]"

    def __call__(self, members, cid: int) -> list:
        return self._loop(members, cid)

    def __reduce__(self):
        return (_rebuild_body, (self.kernel, self.ref, self.profile))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<SpecializedBody {self.__name__}>"


# ----------------------------------------------------------------------
# The compiled-body cache
# ----------------------------------------------------------------------
@dataclass
class SpecializationCacheStats:
    hits: int = 0
    misses: int = 0
    compiles: int = 0
    evictions: int = 0
    invalidations: int = 0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "compiles": self.compiles,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }


#: Process-global store of compiled loops, keyed like the LRU below.
#: A fresh :class:`KernelSpecializer` (one per :class:`Scheduler`)
#: starts with an empty LRU but still reuses loops some earlier
#: specializer already ``exec``-compiled in this process — without
#: this, every sweep cell and every serve gateway would pay the
#: multi-millisecond lowering cost again.
_BODY_CACHE: dict[tuple, "SpecializedBody"] = {}
_body_cache_lock = threading.Lock()

#: Safety valve for pathological churn (e.g. a test loop redefining
#: bodies): past this many distinct fingerprints the store resets.
_BODY_CACHE_MAX = 512


def _compiled_body(
    key: tuple, kernel: str, fn: Callable, profile: bool
) -> "SpecializedBody":
    body = _BODY_CACHE.get(key)
    if body is None:
        with _body_cache_lock:
            body = _BODY_CACHE.get(key)
            if body is None:
                if len(_BODY_CACHE) >= _BODY_CACHE_MAX:
                    _BODY_CACHE.clear()
                body = SpecializedBody(kernel, fn, profile)
                _BODY_CACHE[key] = body
    return body


class SpecializationCache:
    """LRU cache of compiled bodies keyed ``(kernel, variant, spec)``.

    The variant's code fingerprint is part of the key, so redefining a
    kernel body naturally misses (the stale entry ages out of the LRU);
    :meth:`invalidate` evicts a kernel's entries eagerly.
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ConfigError(
                f"specialization cache capacity must be >= 1, "
                f"got {capacity}"
            )
        self.capacity = capacity
        self._entries: "OrderedDict[tuple, SpecializedBody]" = (
            OrderedDict()
        )
        self.stats = SpecializationCacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def body(
        self, kernel: str, fn: Callable, profile: bool
    ) -> SpecializedBody:
        """The compiled body for one variant — cached per fingerprint."""
        key = (kernel, _variant_ref(fn), _fingerprint(fn), profile)
        body = self._entries.get(key)
        if body is not None:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return body
        self.stats.misses += 1
        # "compiles" counts bodies materialized into THIS cache; the
        # exec cost itself is amortized through the process-global
        # store when another specializer compiled the same variant.
        body = _compiled_body(key, kernel, fn, profile)
        self.stats.compiles += 1
        self._entries[key] = body
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        return body

    def invalidate(self, kernel: str | None = None) -> int:
        """Evict one kernel's compiled bodies (or all of them)."""
        doomed = [
            key
            for key in self._entries
            if kernel is None or key[0] == kernel
        ]
        for key in doomed:
            del self._entries[key]
        with _body_cache_lock:
            for key in [
                k
                for k in _BODY_CACHE
                if kernel is None or k[0] == kernel
            ]:
                del _BODY_CACHE[key]
        self.stats.invalidations += len(doomed)
        return len(doomed)

    def keys(self) -> list[tuple]:
        return list(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<SpecializationCache {len(self)}/{self.capacity} "
            f"compiles={self.stats.compiles}>"
        )


# ----------------------------------------------------------------------
# The specialized plan: chunks shaped for Scheduler.spawn_specialized
# ----------------------------------------------------------------------
@dataclass
class ChunkBatch:
    """All chunks sharing one compiled body (one spawn_many call)."""

    body: SpecializedBody
    #: ``[(members, cid), ...]`` — the chunk argument tuples.
    args_list: list[tuple]
    #: Per-chunk :class:`TaskCost`, indexed by the chunk's ``cid``.
    costs: dict[int, TaskCost]


@dataclass
class SpecializedPlan:
    """One batch's folded decisions plus its compiled chunk tasks.

    ``kinds`` is the per-element decision vector in spawn order;
    ``batches`` the chunk tasks to spawn (accurate chunks first, then
    approximate); ``chunk_members`` maps each chunk id back to the
    element indices it executes, which is what :meth:`gather` uses to
    scatter chunk results into a full-length per-element result list
    (``None`` for dropped elements, as in the interpreted runtime).
    """

    kernel: str
    spec: SpecializationSpec
    kinds: list[ExecutionKind]
    batches: list[ChunkBatch]
    chunk_members: list[list[int]]
    #: Summed member work per decided kind (unscaled).  Chunks execute
    #: as forced-accurate tasks, so the trace cannot split busy time by
    #: kind; these shares let the serve layer apportion a specialized
    #: job's energy between its accurate and approximate halves.
    work_acc: float = 0.0
    work_apx: float = 0.0

    @property
    def n_tasks(self) -> int:
        return len(self.kinds)

    @property
    def n_chunks(self) -> int:
        return len(self.chunk_members)

    @property
    def accurate(self) -> int:
        return sum(
            1 for k in self.kinds if k is ExecutionKind.ACCURATE
        )

    @property
    def approximate(self) -> int:
        return sum(
            1 for k in self.kinds if k is ExecutionKind.APPROXIMATE
        )

    @property
    def dropped(self) -> int:
        return sum(
            1 for k in self.kinds if k is ExecutionKind.DROPPED
        )

    def gather(self, chunk_results: list) -> list:
        """Scatter per-chunk result lists back to element order.

        ``chunk_results`` must be aligned with the spawn order of the
        plan's chunks (batch 0's chunks, then batch 1's) — exactly the
        ``[task.result for task in spawn_specialized(...)]`` list.
        """
        if len(chunk_results) != self.n_chunks:
            raise SpecializationError(
                f"gather expected {self.n_chunks} chunk results, "
                f"got {len(chunk_results)}"
            )
        out: list = [None] * self.n_tasks
        for members, results in zip(self.chunk_members, chunk_results):
            if results is None:
                continue
            for index, value in zip(members, results):
                out[index] = value
        return out


#: Minimum elements per chunk.  Chunking exists to amortize per-task
#: runtime overhead over many elements; splitting a 30-element batch
#: 16 ways would spawn almost as many tasks as the interpreted loop
#: and lose the entire win.
MIN_CHUNK_ELEMENTS = 8


def _split_chunks(indices: list[int], n_chunks: int) -> list[list[int]]:
    """Split an index list into up to ``n_chunks`` balanced runs of at
    least :data:`MIN_CHUNK_ELEMENTS` each (short batches get one run).
    """
    n = len(indices)
    if n == 0:
        return []
    n_chunks = max(1, min(n_chunks, n // MIN_CHUNK_ELEMENTS, n))
    size, extra = divmod(n, n_chunks)
    out: list[list[int]] = []
    at = 0
    for c in range(n_chunks):
        take = size + (1 if c < extra else 0)
        out.append(indices[at : at + take])
        at += take
    return out


# ----------------------------------------------------------------------
# The compile-tier component ("compile" registry family)
# ----------------------------------------------------------------------
@register("compile", "specialize")
class KernelSpecializer:
    """The ``"specialize"`` compile tier (``RuntimeConfig.compile``).

    Parameters
    ----------
    cache_size:
        LRU capacity of the compiled-body cache
        (``"specialize:cache_size=N"``).
    profile:
        Emit the shallow-profiled loops (per-callee timings into
        :func:`profile_snapshot` at <5% overhead).
    chunks:
        Default chunk fan-out per kind when the caller does not pass
        one (callers normally pass the scheduler's worker width).
    """

    def __init__(
        self,
        cache_size: int = 64,
        profile: bool = False,
        chunks: int = 16,
    ) -> None:
        if not isinstance(chunks, int) or chunks < 1:
            raise ConfigError(
                f"specialize chunks must be an int >= 1, got {chunks!r}"
            )
        if not isinstance(profile, bool):
            raise ConfigError(
                f"specialize profile must be a bool, got {profile!r}"
            )
        self.cache = SpecializationCache(cache_size)
        self.profile = profile
        self.chunks = chunks

    # -- core ----------------------------------------------------------
    def specialize(
        self,
        kernel: str,
        fn: Callable,
        args_list: Any,
        *,
        significance: Any = 1.0,
        approxfun: Callable | None = None,
        cost: Any = None,
        ratio: float = 1.0,
        dvfs_factor: float = 1.0,
        n_chunks: int | None = None,
    ) -> SpecializedPlan:
        """Fold one task batch for ``(ratio, dvfs_factor)``.

        ``significance`` and ``cost`` follow the ``spawn_many`` clause
        convention (constants or per-element callables over the
        element's arguments).  Returns a :class:`SpecializedPlan`
        ready for ``Scheduler.spawn_specialized``.
        """
        spec = SpecializationSpec(ratio=ratio, dvfs_factor=dvfs_factor)
        members: list[tuple] = [
            args if isinstance(args, tuple) else (args,)
            for args in args_list
        ]
        sig_fn = significance if callable(significance) else None
        sigs = [
            sig_fn(*args) if sig_fn else float(significance)
            for args in members
        ]
        kinds = decide_kinds(sigs, approxfun is None, spec.ratio)

        cost_fn = (
            cost
            if callable(cost) and not isinstance(cost, TaskCost)
            else None
        )
        works: list[float] = []
        for args, kind in zip(members, kinds):
            c = cost_fn(*args) if cost_fn else cost
            works.append(
                c.for_kind(kind) if isinstance(c, TaskCost) else 0.0
            )

        fan_out = n_chunks if n_chunks is not None else self.chunks
        batches: list[ChunkBatch] = []
        chunk_members: list[list[int]] = []
        cid = 0
        variants = (
            (ExecutionKind.ACCURATE, fn),
            (ExecutionKind.APPROXIMATE, approxfun),
        )
        for kind, body_fn in variants:
            indices = [i for i, k in enumerate(kinds) if k is kind]
            if not indices or body_fn is None:
                continue
            body = self.cache.body(kernel, body_fn, self.profile)
            args_out: list[tuple] = []
            costs: dict[int, TaskCost] = {}
            for run in _split_chunks(indices, fan_out):
                work = sum(works[i] for i in run) / spec.dvfs_factor
                args_out.append(
                    (tuple(members[i] for i in run), cid)
                )
                costs[cid] = TaskCost(accurate=work)
                chunk_members.append(run)
                cid += 1
            batches.append(
                ChunkBatch(body=body, args_list=args_out, costs=costs)
            )
        return SpecializedPlan(
            kernel=kernel,
            spec=spec,
            kinds=kinds,
            batches=batches,
            chunk_members=chunk_members,
            work_acc=sum(
                w
                for w, k in zip(works, kinds)
                if k is ExecutionKind.ACCURATE
            ),
            work_apx=sum(
                w
                for w, k in zip(works, kinds)
                if k is ExecutionKind.APPROXIMATE
            ),
        )

    def specialize_plan(
        self,
        kernel: str,
        plan: Any,
        *,
        ratio: float,
        dvfs_factor: float = 1.0,
        n_chunks: int | None = None,
    ) -> SpecializedPlan | None:
        """Specialize a servable kernel's :class:`TaskPlan`.

        Returns ``None`` when the plan's bodies cannot be specialized
        (non-importable callables) — the caller falls back to the
        interpreted spawn path.
        """
        try:
            return self.specialize(
                kernel,
                plan.fn,
                plan.args_list,
                significance=plan.significance,
                approxfun=plan.approxfun,
                cost=plan.cost,
                ratio=ratio,
                dvfs_factor=dvfs_factor,
                n_chunks=n_chunks,
            )
        except SpecializationError:
            return None

    # -- management ----------------------------------------------------
    def invalidate(self, kernel: str | None = None) -> int:
        """Evict compiled bodies (one kernel's, or everything)."""
        return self.cache.invalidate(kernel)

    def stats(self) -> dict:
        return self.cache.stats.to_dict()

    def describe(self) -> str:
        text = f"specialize(cache={self.cache.capacity}"
        if self.profile:
            text += ",profile"
        return text + ")"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<KernelSpecializer {self.describe()}>"
