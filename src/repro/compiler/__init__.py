"""Pragma front-end: the SCOOP source-to-source compiler substitute.

Parses ``#pragma omp task`` / ``#pragma omp taskwait`` directives
embedded as comments in Python source and lowers them to runtime calls
(paper section 2, Listings 1-3).
"""

from .directives import (
    TaskDirective,
    TaskwaitDirective,
    validate_expression,
)
from .lowering import (
    PragmaLowerer,
    compile_pragmas,
    lower_source,
    pragma_compile,
    preprocess_source,
)
from .parser import is_pragma, parse_directive, scan_pragmas, split_arguments

__all__ = [
    "TaskDirective",
    "TaskwaitDirective",
    "validate_expression",
    "is_pragma",
    "parse_directive",
    "scan_pragmas",
    "split_arguments",
    "preprocess_source",
    "PragmaLowerer",
    "lower_source",
    "compile_pragmas",
    "pragma_compile",
]
