"""Pragma front-end and compile tier: the SCOOP compiler, grown up.

The front-end parses ``#pragma omp task`` / ``#pragma omp taskwait``
directives embedded as comments in Python source and lowers them to
runtime calls (paper section 2, Listings 1-3).

The compile tier (:mod:`repro.compiler.specialize`, the ``"compile"``
registry family behind ``RuntimeConfig.compile``) goes one step
further: it constant-folds the per-task significance decision for a
concrete ``(ratio, dvfs_factor)`` spec, inlines the chosen
exact/approximate variant into branch-free chunk loops compiled once
and cached per spec, and optionally wraps every inner call with a
shallow profiler.
"""

from .directives import (
    TaskDirective,
    TaskwaitDirective,
    validate_expression,
)
from .lowering import (
    PragmaLowerer,
    compile_pragmas,
    lower_source,
    pragma_compile,
    preprocess_source,
)
from .parser import is_pragma, parse_directive, scan_pragmas, split_arguments
from .specialize import (
    KernelSpecializer,
    SpecializationCache,
    SpecializationError,
    SpecializationSpec,
    SpecializedBody,
    SpecializedPlan,
    clear_profile,
    decide_kinds,
    profile_snapshot,
)

__all__ = [
    "TaskDirective",
    "TaskwaitDirective",
    "validate_expression",
    "is_pragma",
    "parse_directive",
    "scan_pragmas",
    "split_arguments",
    "preprocess_source",
    "PragmaLowerer",
    "lower_source",
    "compile_pragmas",
    "pragma_compile",
    "SpecializationSpec",
    "SpecializationCache",
    "SpecializationError",
    "SpecializedBody",
    "SpecializedPlan",
    "KernelSpecializer",
    "decide_kinds",
    "profile_snapshot",
    "clear_profile",
]
