"""Directive AST for the pragma front-end.

The paper's programming model consists of exactly two directives
(Listings 2 and 3)::

    #pragma omp task [significant(expr)] [approxfun(function)]
                     [label(...)] [in(...)] [out(...)]

    #pragma omp taskwait [on(...)] [label(...)] [ratio(...)]

This module defines their parsed representation.  Clause argument
expressions are kept as *source strings* (validated to parse as Python
expressions); the lowering stage splices them into the generated
runtime calls so they evaluate in the enclosing scope with the
enclosing variables — the same semantics the C pragmas have.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from ..runtime.errors import DirectiveSyntaxError

__all__ = [
    "TaskDirective",
    "TaskwaitDirective",
    "Directive",
    "validate_expression",
]

#: Clauses accepted by each directive (paper grammar + the ``cost``
#: extension used to annotate analytic work).
TASK_CLAUSES = ("significant", "approxfun", "label", "in", "out", "cost")
TASKWAIT_CLAUSES = ("on", "label", "ratio")


def validate_expression(expr: str, line: int | None = None) -> str:
    """Ensure a clause argument is a valid Python expression."""
    try:
        ast.parse(expr, mode="eval")
    except SyntaxError as e:
        raise DirectiveSyntaxError(
            f"invalid clause expression {expr!r}: {e.msg}", line
        ) from e
    return expr


@dataclass
class TaskDirective:
    """A parsed ``#pragma omp task`` directive."""

    line: int
    significant: str | None = None
    approxfun: str | None = None
    label: str | None = None
    ins: list[str] = field(default_factory=list)
    outs: list[str] = field(default_factory=list)
    cost: str | None = None

    kind = "task"

    def validate(self) -> "TaskDirective":
        for e in filter(None, [self.significant, self.approxfun, self.cost]):
            validate_expression(e, self.line)
        for e in self.ins + self.outs:
            validate_expression(e, self.line)
        return self


@dataclass
class TaskwaitDirective:
    """A parsed ``#pragma omp taskwait`` directive."""

    line: int
    on: str | None = None
    label: str | None = None
    ratio: str | None = None

    kind = "taskwait"

    def validate(self) -> "TaskwaitDirective":
        for e in filter(None, [self.on, self.ratio]):
            validate_expression(e, self.line)
        return self


Directive = TaskDirective | TaskwaitDirective
