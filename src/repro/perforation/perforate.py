"""Loop perforation — the paper's comparison baseline.

Loop perforation [Sidiroglou-Douskos et al., ESEC/FSE 2011] "classifies
loop iterations into critical and non-critical ones.  The latter can be
dropped, as long as the results of the loop are acceptable from a
quality standpoint."  The paper compares its significance-driven runtime
against perforated versions of each benchmark, arranged so that "the
perforated version executes the same number of tasks as those executed
accurately by our approach" (section 4.1).

This module provides the iteration-selection schemes a perforating
compiler would emit, plus a decorator that perforates functions
iterating over an index range.  Perforation is *blind*: it has no notion
of significance — dropping the same fraction of iterations that the
significance runtime would approximate, but without choosing *which*
ones matter (which is exactly why Figure 3 looks so much worse than
Figure 1).
"""

from __future__ import annotations

import functools
from typing import Callable, Iterable

import numpy as np

from ..runtime.errors import ReproError

__all__ = ["PerforationError", "perforated_indices", "perforate_loop"]


class PerforationError(ReproError, ValueError):
    """Invalid perforation configuration."""


_SCHEMES = ("stride", "truncate", "random")


def perforated_indices(
    n: int,
    keep_fraction: float,
    scheme: str = "stride",
    seed: int = 0,
) -> np.ndarray:
    """Indices in ``range(n)`` a perforated loop still executes.

    Schemes (the standard perforation transformations):

    * ``stride``   — keep every k-th iteration, evenly spread (the
      "interleaved" perforation most perforating compilers default to);
    * ``truncate`` — keep the first ``keep_fraction * n`` iterations;
    * ``random``   — keep a uniform random subset (seeded).

    ``keep_fraction=1`` keeps everything; ``0`` drops everything.
    """
    if not 0.0 <= keep_fraction <= 1.0:
        raise PerforationError(
            f"keep_fraction must be in [0, 1], got {keep_fraction}"
        )
    if n < 0:
        raise PerforationError(f"negative loop trip count: {n}")
    if scheme not in _SCHEMES:
        raise PerforationError(
            f"unknown scheme {scheme!r}; expected one of {_SCHEMES}"
        )
    keep = int(round(keep_fraction * n))
    if keep == 0:
        return np.empty(0, dtype=np.int64)
    if keep >= n:
        return np.arange(n, dtype=np.int64)
    if scheme == "truncate":
        return np.arange(keep, dtype=np.int64)
    if scheme == "random":
        rng = np.random.default_rng(seed)
        return np.sort(rng.choice(n, size=keep, replace=False)).astype(
            np.int64
        )
    # stride: ideal equidistant placement, first iteration always kept.
    return np.unique(
        np.floor(np.arange(keep) * (n / keep)).astype(np.int64)
    )


def perforate_loop(
    keep_fraction: float, scheme: str = "stride", seed: int = 0
) -> Callable:
    """Decorator: perforate a function of the form ``f(i, ...)``.

    Returns a wrapper ``g(indices, ...)`` that calls ``f`` only for the
    kept subset of ``indices`` — the code shape a perforating compiler
    produces for a counted loop whose body is ``f``.

    >>> @perforate_loop(0.5)
    ... def body(i, acc):
    ...     acc.append(i)
    >>> acc = []
    >>> body(range(10), acc)
    >>> len(acc)
    5
    """

    def deco(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(indices: Iterable[int], *args, **kwargs):
            idx = np.fromiter(indices, dtype=np.int64)
            for i in perforated_indices(
                len(idx), keep_fraction, scheme, seed
            ):
                fn(int(idx[i]), *args, **kwargs)

        wrapper.keep_fraction = keep_fraction  # type: ignore[attr-defined]
        wrapper.scheme = scheme  # type: ignore[attr-defined]
        return wrapper

    return deco
