"""Loop perforation baseline (Sidiroglou-Douskos et al., FSE 2011)."""

from .perforate import PerforationError, perforate_loop, perforated_indices

__all__ = ["PerforationError", "perforate_loop", "perforated_indices"]
