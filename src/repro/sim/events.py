"""Deterministic discrete-event queue.

A thin priority queue over ``(time, sequence)`` pairs.  The sequence
number is a global tie-breaker, so two events scheduled for the same
virtual instant always fire in insertion order — this is what makes whole
simulation runs bit-reproducible regardless of hash seeds or dict
ordering.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from ..runtime.errors import SchedulerError

__all__ = ["Event", "EventQueue"]


@dataclass(order=True)
class Event:
    """One scheduled occurrence; ordering is (time, seq)."""

    time: float
    seq: int
    action: Callable[[float], None] = field(compare=False)
    tag: str = field(default="", compare=False)
    payload: Any = field(default=None, compare=False)


class EventQueue:
    """Min-heap of :class:`Event` with monotone pop times."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._last_pop = 0.0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(
        self,
        time: float,
        action: Callable[[float], None],
        tag: str = "",
        payload: Any = None,
    ) -> Event:
        """Schedule ``action(time)`` at virtual ``time``.

        Events may only be scheduled at or after the time of the last pop
        — scheduling into the already-processed past would make the
        simulation acausal.
        """
        if time < self._last_pop - 1e-12:
            raise SchedulerError(
                f"event {tag!r} scheduled at {time} before already-"
                f"processed time {self._last_pop}"
            )
        ev = Event(time, next(self._seq), action, tag, payload)
        heapq.heappush(self._heap, ev)
        return ev

    def pop(self) -> Event:
        if not self._heap:
            raise SchedulerError("pop from empty event queue")
        ev = heapq.heappop(self._heap)
        self._last_pop = ev.time
        return ev

    def peek_time(self) -> float | None:
        """Time of the next event, or None when the queue is empty."""
        return self._heap[0].time if self._heap else None

    def clear(self) -> None:
        self._heap.clear()
        self._last_pop = 0.0
