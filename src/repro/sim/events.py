"""Deterministic discrete-event queue.

A thin priority queue over ``(time, sequence)`` pairs.  The sequence
number is a global tie-breaker, so two events scheduled for the same
virtual instant always fire in insertion order — this is what makes whole
simulation runs bit-reproducible regardless of hash seeds or dict
ordering.

Performance note: :class:`Event` is a :class:`typing.NamedTuple` rather
than a dataclass so heap ordering is plain C-level tuple comparison —
``(time, seq)`` decides before the callable is ever looked at (``seq``
is unique, so comparison never reaches the non-orderable fields).  Event
ordering used to dominate simulated-run profiles; see ``repro.bench``.

The queue never *invokes* ``action`` itself — the driver popping events
owns the calling convention.  :class:`~repro.sim.machine.SimulatedMachine`
pushes two-argument bound methods and calls ``action(payload, time)``
(operand in the payload, no per-event closure); a standalone driver is
free to push one-argument callables and call ``action(time)``.
"""

from __future__ import annotations

import itertools
from heapq import heappop, heappush
from typing import Any, Callable, NamedTuple

from ..runtime.errors import SchedulerError

__all__ = ["Event", "EventQueue"]


class Event(NamedTuple):
    """One scheduled occurrence; ordering is (time, seq).

    ``action``'s signature is a contract between whoever pushes the
    event and whoever pops it (see module docstring); the queue only
    stores it.
    """

    time: float
    seq: int
    action: Callable[..., None]
    tag: str = ""
    payload: Any = None


class EventQueue:
    """Min-heap of :class:`Event` with monotone pop times."""

    __slots__ = ("_heap", "_next_seq", "_last_pop")

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._next_seq = itertools.count().__next__
        self._last_pop = 0.0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(
        self,
        time: float,
        action: Callable[..., None],
        tag: str = "",
        payload: Any = None,
    ) -> Event:
        """Schedule ``action`` to fire at virtual ``time``.

        Events may only be scheduled at or after the time of the last pop
        — scheduling into the already-processed past would make the
        simulation acausal.
        """
        if time < self._last_pop - 1e-12:
            raise SchedulerError(
                f"event {tag!r} scheduled at {time} before already-"
                f"processed time {self._last_pop}"
            )
        ev = Event(time, self._next_seq(), action, tag, payload)
        heappush(self._heap, ev)
        return ev

    def pop(self) -> Event:
        if not self._heap:
            raise SchedulerError("pop from empty event queue")
        ev = heappop(self._heap)
        self._last_pop = ev.time
        return ev

    def peek_time(self) -> float | None:
        """Time of the next event, or None when the queue is empty."""
        return self._heap[0].time if self._heap else None

    def clear(self) -> None:
        self._heap.clear()
        self._last_pop = 0.0
