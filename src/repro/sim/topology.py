"""Machine topology: sockets and cores.

The paper's testbed is "2 Intel(R) Xeon(R) CPU E5-2650 processors ...
Each CPU consists of 8 cores", hyper-threading disabled, 16 threads
pinned on 16 cores.  :class:`Topology` captures exactly the structural
facts the energy model needs: how many sockets there are and which core
lives on which socket (package power is accounted per socket).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..runtime.errors import EnergyModelError

__all__ = ["Topology"]


@dataclass(frozen=True)
class Topology:
    """A multi-socket, multi-core shared-memory machine shape."""

    sockets: int = 2
    cores_per_socket: int = 8

    def __post_init__(self) -> None:
        if self.sockets < 1 or self.cores_per_socket < 1:
            raise EnergyModelError(
                f"invalid topology: {self.sockets} sockets x "
                f"{self.cores_per_socket} cores"
            )

    @property
    def n_cores(self) -> int:
        return self.sockets * self.cores_per_socket

    def socket_of(self, core: int) -> int:
        """Socket hosting ``core`` (cores are numbered socket-major)."""
        if not 0 <= core < self.n_cores:
            raise EnergyModelError(
                f"core {core} out of range 0..{self.n_cores - 1}"
            )
        return core // self.cores_per_socket

    def cores_of(self, socket: int) -> range:
        """Core ids belonging to ``socket``."""
        if not 0 <= socket < self.sockets:
            raise EnergyModelError(f"socket {socket} out of range")
        lo = socket * self.cores_per_socket
        return range(lo, lo + self.cores_per_socket)

    @classmethod
    def for_workers(cls, n_workers: int, cores_per_socket: int = 8) -> "Topology":
        """Smallest topology (in whole sockets) hosting ``n_workers``."""
        if n_workers < 1:
            raise EnergyModelError(f"need >=1 worker, got {n_workers}")
        sockets = -(-n_workers // cores_per_socket)
        return cls(sockets=sockets, cores_per_socket=cores_per_socket)
