"""Chrome trace-event export for execution traces.

Serializes an :class:`~repro.sim.trace.ExecutionTrace` into the Chrome
``chrome://tracing`` / Perfetto JSON format, one timeline row per
worker, so schedules can be inspected interactively.  Accurate tasks
render in one color category, approximate in another; dropped tasks are
instant events.

``group_meta`` attaches extra identity to every segment of a task
group — the serving layer passes ``{label: {"tenant": ..., "job": ...,
"kernel": ...}}`` so a whole multi-tenant serve run renders as one
timeline whose events filter by tenant and job id (the ``cat`` field
additionally gains a ``tenant:<name>`` tag for Perfetto's category
filter).
"""

from __future__ import annotations

import json
from pathlib import Path

from ..runtime.task import ExecutionKind
from .trace import ExecutionTrace

__all__ = ["to_chrome_trace", "write_chrome_trace"]

_CATEGORY = {
    ExecutionKind.ACCURATE: "accurate",
    ExecutionKind.APPROXIMATE: "approximate",
    ExecutionKind.DROPPED: "dropped",
}


def to_chrome_trace(
    trace: ExecutionTrace,
    pid: int = 1,
    group_meta: dict[str, dict] | None = None,
) -> dict:
    """Build the trace-event JSON object (not yet serialized).

    ``group_meta`` maps group labels to extra ``args`` entries merged
    into each of that group's events (e.g. serve-layer tenant/job ids);
    a ``"tenant"`` entry is also appended to the event category.  The
    reserved ``"__run__"`` key carries run-level metadata (e.g. the
    serve layer's data-plane byte accounting) and lands in the trace's
    top-level ``otherData`` instead of on any event.
    """
    run_meta = None
    if group_meta is not None and "__run__" in group_meta:
        group_meta = dict(group_meta)
        run_meta = group_meta.pop("__run__")
    events: list[dict] = []
    for w in range(trace.n_workers):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": w,
                "args": {"name": f"worker-{w}"},
            }
        )
    for seg in trace.segments:
        meta = group_meta.get(seg.group) if group_meta else None
        cat = _CATEGORY[seg.kind]
        args = {
            "tid": seg.tid,
            "kind": seg.kind.value,
            "group": seg.group,
        }
        if meta:
            args.update(meta)
            tenant = meta.get("tenant")
            if tenant:
                cat = f"{cat},tenant:{tenant}"
        base = {
            "pid": pid,
            "tid": seg.worker,
            "cat": cat,
            "name": f"task-{seg.tid}"
            + (f" [{seg.group}]" if seg.group else ""),
            "args": args,
        }
        us = 1e6  # trace-event timestamps are microseconds
        if seg.duration <= 0:
            events.append(
                {**base, "ph": "i", "ts": seg.start * us, "s": "t"}
            )
        else:
            events.append(
                {
                    **base,
                    "ph": "X",
                    "ts": seg.start * us,
                    "dur": seg.duration * us,
                }
            )
    other = {
        "makespan_s": trace.makespan,
        "workers": trace.n_workers,
    }
    if run_meta:
        other.update(run_meta)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def write_chrome_trace(
    trace: ExecutionTrace,
    path: str | Path,
    pid: int = 1,
    group_meta: dict[str, dict] | None = None,
) -> Path:
    """Serialize to a ``.json`` file loadable by chrome://tracing."""
    p = Path(path)
    p.write_text(json.dumps(to_chrome_trace(trace, pid, group_meta)))
    return p
