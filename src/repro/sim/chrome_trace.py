"""Chrome trace-event export for execution traces.

Serializes an :class:`~repro.sim.trace.ExecutionTrace` into the Chrome
``chrome://tracing`` / Perfetto JSON format, one timeline row per
worker, so schedules can be inspected interactively.  Accurate tasks
render in one color category, approximate in another; dropped tasks are
instant events.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..runtime.task import ExecutionKind
from .trace import ExecutionTrace

__all__ = ["to_chrome_trace", "write_chrome_trace"]

_CATEGORY = {
    ExecutionKind.ACCURATE: "accurate",
    ExecutionKind.APPROXIMATE: "approximate",
    ExecutionKind.DROPPED: "dropped",
}


def to_chrome_trace(trace: ExecutionTrace, pid: int = 1) -> dict:
    """Build the trace-event JSON object (not yet serialized)."""
    events: list[dict] = []
    for w in range(trace.n_workers):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": w,
                "args": {"name": f"worker-{w}"},
            }
        )
    for seg in trace.segments:
        base = {
            "pid": pid,
            "tid": seg.worker,
            "cat": _CATEGORY[seg.kind],
            "name": f"task-{seg.tid}"
            + (f" [{seg.group}]" if seg.group else ""),
            "args": {
                "tid": seg.tid,
                "kind": seg.kind.value,
                "group": seg.group,
            },
        }
        us = 1e6  # trace-event timestamps are microseconds
        if seg.duration <= 0:
            events.append(
                {**base, "ph": "i", "ts": seg.start * us, "s": "t"}
            )
        else:
            events.append(
                {
                    **base,
                    "ph": "X",
                    "ts": seg.start * us,
                    "dur": seg.duration * us,
                }
            )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "makespan_s": trace.makespan,
            "workers": trace.n_workers,
        },
    }


def write_chrome_trace(
    trace: ExecutionTrace, path: str | Path, pid: int = 1
) -> Path:
    """Serialize to a ``.json`` file loadable by chrome://tracing."""
    p = Path(path)
    p.write_text(json.dumps(to_chrome_trace(trace, pid)))
    return p
