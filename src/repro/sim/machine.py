"""The discrete-event simulated multicore machine.

This is the substitution for the paper's 16-core Xeon testbed (DESIGN.md
section 2).  The *runtime logic* — per-worker queues, round-robin issue,
work stealing, policy decisions, dependence release — is the production
code from :mod:`repro.runtime`; only the passage of time is virtual:

* the **master** timeline advances as the program spawns tasks (task
  creation cost, policy buffering cost, GTB sort cost);
* **workers** are simulated cores that acquire tasks from the queue
  fabric, execute the *real* Python body (so program outputs and quality
  metrics are genuine), and occupy virtual time according to the cost
  model;
* a :class:`~repro.sim.events.EventQueue` orders everything
  deterministically.

Scheduling discipline (paper section 3): tasks are distributed round-
robin to per-worker FIFO queues; workers take the oldest task from their
own queue and steal the oldest task from a victim when empty.

Hot-path design (measured by ``repro.bench``; the event loop dominates
simulated runs):

* machine events carry their operand in the event ``payload`` and a
  two-argument bound-method ``action(payload, now)`` — no per-event
  closure allocation;
* wake-ups are *coalesced*: only idle workers are woken, at most one
  pending ``tryrun`` event per worker (``_wake_pending``), instead of
  one event per (enqueue × worker);
* host wall-clock measurement around task bodies is skipped whenever
  the cost model declares it unnecessary
  (:meth:`~repro.energy.cost.CostModel.wants_measurement`).
"""

from __future__ import annotations

import time as _time
from typing import TYPE_CHECKING, Callable

from ..runtime.errors import SchedulerError
from ..runtime.queues import WorkerQueues
from ..runtime.task import Task, TaskState
from .clock import VirtualClock
from .events import EventQueue

if TYPE_CHECKING:  # pragma: no cover
    from ..energy.cost import CostModel
    from ..energy.machine_model import MachineModel
    from ..runtime.accounting import AccountingCore
    from ..runtime.policies.base import Policy

__all__ = ["SimulatedMachine"]


class SimulatedMachine:
    """Event-driven execution of the task stream on N virtual cores."""

    __slots__ = (
        "machine_model",
        "cost_model",
        "policy",
        "on_task_finished",
        "stall_handler",
        "clock",
        "events",
        "queues",
        "accounting",
        "trace",
        "busy",
        "master_time",
        "_idle",
        "_wake_pending",
        "_inv_ops",
        "_decide",
        "_decide_overhead",
        "_decide_overhead_const",
        "_wants_measurement",
        "_nominal_model",
        "_tick_interval",
        "_tick_cb",
        "_tick_armed",
    )

    def __init__(
        self,
        n_workers: int,
        machine_model: "MachineModel",
        cost_model: "CostModel",
        policy: "Policy",
        on_task_finished: Callable[[Task, float], None],
        stall_handler: Callable[[], bool] | None = None,
        accounting: "AccountingCore | None" = None,
    ) -> None:
        if n_workers > machine_model.n_cores:
            raise SchedulerError(
                f"{n_workers} workers exceed the machine's "
                f"{machine_model.n_cores} cores"
            )
        self.machine_model = machine_model
        self.cost_model = cost_model
        self.policy = policy
        self.on_task_finished = on_task_finished
        self.stall_handler = stall_handler

        self.clock = VirtualClock()
        self.events = EventQueue()
        self.queues = WorkerQueues(n_workers)
        #: All trace/host/master bookkeeping goes through the shared
        #: accounting core (one per run; the owning engine passes its
        #: own so engine and machine agree on the single trace).
        if accounting is None:
            # Deferred import: sim.machine sits below runtime.accounting
            # in the import graph (accounting imports sim.trace).
            from ..runtime.accounting import AccountingCore

            accounting = AccountingCore(n_workers)
        self.accounting = accounting
        self.trace = accounting.trace
        self.busy: list[bool] = [False] * n_workers
        #: The master thread's private timeline (spawning, buffering).
        self.master_time = 0.0
        #: Workers with no task in flight (wake candidates on enqueue).
        self._idle: set[int] = set(range(n_workers))
        #: Per-worker "a tryrun event is already queued" latch.
        self._wake_pending: list[bool] = [False] * n_workers

        # Precomputed hot-path constants: work-units -> seconds factor,
        # the policy's decision table (bound methods + constant
        # overheads) and the cost model's measurement requirement.
        self._inv_ops = 1.0 / machine_model.ops_per_second
        self._decide = policy.decide
        self._decide_overhead = policy.decide_overhead
        self._decide_overhead_const = policy.decide_overhead_const
        self._wants_measurement = cost_model.wants_measurement
        #: DVFS baseline: factors always scale the *nominal* model, so
        #: repeated switches never compound.
        self._nominal_model = machine_model
        # Periodic-tick state (the governor's clock): interval, bound
        # callback, and an "an event is queued" latch mirroring
        # _wake_pending's coalescing discipline.
        self._tick_interval = 0.0
        self._tick_cb: Callable[[float], None] | None = None
        self._tick_armed = False

        policy.make_worker_state(n_workers)

    # -- master-side operations ---------------------------------------
    def master_charge(self, work_units: float) -> None:
        """Advance the master timeline by ``work_units`` of bookkeeping."""
        dt = work_units * self._inv_ops
        self.master_time += dt
        self.accounting.add_master_busy(dt)

    def enqueue(self, task: Task, at: float | None = None) -> None:
        """Schedule a ready task to enter the queue fabric at ``at``.

        Defaults to the master's current time (master-issued tasks);
        dependence-released tasks pass their releaser's finish time.
        """
        t = self.master_time if at is None else at
        self.events.push(t, self._do_enqueue, tag="enqueue", payload=task)
        self._arm_tick(t)

    def enqueue_many(self, tasks: list[Task], at: float | None = None) -> None:
        """Batched :meth:`enqueue`: one event admits a whole task batch.

        The batched-spawn fast path funnels here — a single heap push
        and a single wake-up pass replace one event per task, which is
        the dominant per-spawn cost on fine-grained streams.
        """
        t = self.master_time if at is None else at
        self.events.push(
            t, self._do_enqueue_many, tag="enqueue_many", payload=tasks
        )
        self._arm_tick(t)

    # -- periodic ticks and DVFS (the governor's actuation surface) -----
    def set_tick(
        self, interval: float, callback: Callable[[float], None]
    ) -> None:
        """Install a periodic callback on the virtual timeline.

        ``callback(now)`` fires every ``interval`` virtual seconds while
        the machine has pending events; it re-arms lazily from the next
        enqueue when the event queue drains, so ticks never keep an
        otherwise-finished simulation alive (and never mask a genuine
        stall from :meth:`run_until`).
        """
        if interval <= 0:
            raise SchedulerError(
                f"tick interval must be > 0, got {interval}"
            )
        self._tick_interval = interval
        self._tick_cb = callback
        self._arm_tick(self.master_time)

    def _arm_tick(self, now: float) -> None:
        if self._tick_cb is not None and not self._tick_armed:
            self._tick_armed = True
            self.events.push(
                now + self._tick_interval,
                self._fire_tick,
                tag="tick",
                payload=None,
            )

    def _fire_tick(self, _payload, now: float) -> None:
        self._tick_armed = False
        cb = self._tick_cb
        if cb is not None:
            cb(now)
        # Re-arm only while real work remains queued: a tick must never
        # be the event that keeps the queue non-empty.
        if self.events:
            self._arm_tick(now)

    def set_frequency_factor(self, factor: float, at: float | None = None) -> None:
        """Online DVFS: run at ``factor`` × nominal frequency from ``at``.

        Swaps the active machine model for the nominal model rescaled by
        ``factor`` (throughput ~f, dynamic power ~f^3 — see
        :meth:`~repro.energy.machine_model.MachineModel.scaled_frequency`)
        so subsequent task durations and master charges stretch
        accordingly, and records a DVFS epoch so energy integration
        bills the new power point.  Tasks already in flight keep their
        committed durations (frequency transitions do not retime
        issued work, as on real hardware with in-flight instructions).
        """
        if factor <= 0:
            raise SchedulerError(
                f"frequency factor must be > 0: {factor}"
            )
        t = max(self.clock.now, self.master_time) if at is None else at
        model = (
            self._nominal_model
            if factor == 1.0
            else self._nominal_model.scaled_frequency(factor)
        )
        self.machine_model = model
        self._inv_ops = 1.0 / model.ops_per_second
        self.accounting.record_dvfs(t, factor)

    def _wake_idle(self, now: float) -> None:
        # Wake idle workers (owner or thief — acquire() resolves which),
        # coalescing to at most one pending tryrun event per worker.
        # Busy workers need no event: they re-poll when they finish.
        if self._idle:
            pending = self._wake_pending
            push = self.events.push
            for w in self._idle:
                if not pending[w]:
                    pending[w] = True
                    push(now, self._try_run, tag="tryrun", payload=w)

    def _do_enqueue(self, task: Task, now: float) -> None:
        task.t_issued = now
        self.queues.push(task)
        self._wake_idle(now)

    def _do_enqueue_many(self, tasks: list[Task], now: float) -> None:
        push = self.queues.push
        for task in tasks:
            task.t_issued = now
            push(task)
        self._wake_idle(now)

    # -- worker-side operations ------------------------------------------
    def _try_run(self, worker: int, now: float) -> None:
        self._wake_pending[worker] = False
        if self.busy[worker]:
            return
        task = self.queues.acquire(worker)
        if task is None:
            return
        self._start_task(worker, task, now)

    def _start_task(self, worker: int, task: Task, now: float) -> None:
        kind = self._decide(task, worker)
        overhead = self._decide_overhead_const
        if overhead is None:
            overhead = self._decide_overhead(task)

        task.state = TaskState.RUNNING
        task.worker = worker
        task.t_started = now

        if self._wants_measurement(task):
            host_t0 = _time.perf_counter()
            task.execute(kind)
            host_dt = _time.perf_counter() - host_t0
            self.accounting.add_host_seconds(host_dt)
        else:
            task.execute(kind)
            host_dt = None

        duration = self.cost_model.duration(
            task, kind, self.machine_model, measured_wall=host_dt
        ) + overhead * self._inv_ops
        self.busy[worker] = True
        self._idle.discard(worker)
        self.events.push(
            now + duration, self._finish_task, tag="finish", payload=task
        )

    def _finish_task(self, task: Task, now: float) -> None:
        worker = task.worker
        self.busy[worker] = False
        self._idle.add(worker)
        task.state = TaskState.FINISHED
        task.t_finished = now
        assert task.decision is not None
        self.accounting.record_task(
            task, worker, task.t_started, now, task.decision
        )
        # Group bookkeeping + dependence release (may enqueue successors
        # at `now`; their events sort after this one).
        self.on_task_finished(task, now)
        if not self._wake_pending[worker]:
            self._wake_pending[worker] = True
            self.events.push(now, self._try_run, tag="tryrun", payload=worker)

    # -- event loop --------------------------------------------------------
    def run_until(
        self, predicate: Callable[[], bool], description: str = "barrier"
    ) -> float:
        """Pump events in time order until ``predicate()`` holds.

        Stops at the first instant the condition is satisfied (leaving
        unrelated future events queued, so other task groups keep
        running "in the background" of subsequent program phases).  If
        the event queue drains with the condition unsatisfied, the
        stall handler gets one chance to produce work (e.g. flushing GTB
        buffers); a second stall is a genuine deadlock.
        """
        stalled_once = False
        events = self.events
        pop = events.pop
        advance = self.clock.advance_unchecked
        while not predicate():
            if not events:
                if not stalled_once and self.stall_handler is not None:
                    stalled_once = True
                    if self.stall_handler():
                        continue
                raise SchedulerError(
                    f"simulation stalled waiting for {description}: no "
                    "events left but the wait condition is unsatisfied "
                    "(buffered tasks never flushed, or a dependence "
                    "cycle)"
                )
            ev = pop()
            advance(ev.time)
            ev.action(ev.payload, ev.time)
        # The master was blocked at the barrier until this instant.
        now = self.clock.now
        if now > self.master_time:
            self.master_time = now
        return now

    def drain(self) -> float:
        """Run every remaining event in one batch (the final barrier)."""
        events = self.events
        pop = events.pop
        advance = self.clock.advance_unchecked
        while events:
            ev = pop()
            advance(ev.time)
            ev.action(ev.payload, ev.time)
        now = self.clock.now
        if now > self.master_time:
            self.master_time = now
        return now

    # -- reporting -----------------------------------------------------------
    @property
    def makespan(self) -> float:
        """Completion time of the whole run (workers and master)."""
        return max(self.trace.makespan, self.master_time)
