"""The discrete-event simulated multicore machine.

This is the substitution for the paper's 16-core Xeon testbed (DESIGN.md
section 2).  The *runtime logic* — per-worker queues, round-robin issue,
work stealing, policy decisions, dependence release — is the production
code from :mod:`repro.runtime`; only the passage of time is virtual:

* the **master** timeline advances as the program spawns tasks (task
  creation cost, policy buffering cost, GTB sort cost);
* **workers** are simulated cores that acquire tasks from the queue
  fabric, execute the *real* Python body (so program outputs and quality
  metrics are genuine), and occupy virtual time according to the cost
  model;
* a :class:`~repro.sim.events.EventQueue` orders everything
  deterministically.

Scheduling discipline (paper section 3): tasks are distributed round-
robin to per-worker FIFO queues; workers take the oldest task from their
own queue and steal the oldest task from a victim when empty.
"""

from __future__ import annotations

import time as _time
from typing import TYPE_CHECKING, Callable

from ..runtime.errors import SchedulerError
from ..runtime.queues import WorkerQueues
from ..runtime.task import Task, TaskState
from .clock import VirtualClock
from .events import EventQueue
from .trace import ExecutionTrace, Segment

if TYPE_CHECKING:  # pragma: no cover
    from ..energy.cost import CostModel
    from ..energy.machine_model import MachineModel
    from ..runtime.policies.base import Policy

__all__ = ["SimulatedMachine"]


class SimulatedMachine:
    """Event-driven execution of the task stream on N virtual cores."""

    def __init__(
        self,
        n_workers: int,
        machine_model: "MachineModel",
        cost_model: "CostModel",
        policy: "Policy",
        on_task_finished: Callable[[Task, float], None],
        stall_handler: Callable[[], bool] | None = None,
    ) -> None:
        if n_workers > machine_model.n_cores:
            raise SchedulerError(
                f"{n_workers} workers exceed the machine's "
                f"{machine_model.n_cores} cores"
            )
        self.machine_model = machine_model
        self.cost_model = cost_model
        self.policy = policy
        self.on_task_finished = on_task_finished
        self.stall_handler = stall_handler

        self.clock = VirtualClock()
        self.events = EventQueue()
        self.queues = WorkerQueues(n_workers)
        self.trace = ExecutionTrace(n_workers)
        self.busy: list[bool] = [False] * n_workers
        #: The master thread's private timeline (spawning, buffering).
        self.master_time = 0.0

        policy.make_worker_state(n_workers)

    # -- master-side operations ---------------------------------------
    def master_charge(self, work_units: float) -> None:
        """Advance the master timeline by ``work_units`` of bookkeeping."""
        dt = self.machine_model.duration_of(work_units)
        self.master_time += dt
        self.trace.master_busy += dt

    def enqueue(self, task: Task, at: float | None = None) -> None:
        """Schedule a ready task to enter the queue fabric at ``at``.

        Defaults to the master's current time (master-issued tasks);
        dependence-released tasks pass their releaser's finish time.
        """
        t = self.master_time if at is None else at
        self.events.push(t, lambda now, task=task: self._do_enqueue(task, now), tag="enqueue")

    def _do_enqueue(self, task: Task, now: float) -> None:
        task.t_issued = now
        owner = self.queues.push(task)
        # Wake the owner plus every currently idle worker so stealing can
        # kick in immediately (the paper's work-sharing runtime keeps
        # idle workers spinning on steal attempts; events replace spins).
        for w in range(self.queues.n_workers):
            if w == owner or not self.busy[w]:
                self.events.push(
                    now, lambda t, w=w: self._try_run(w, t), tag="tryrun"
                )

    # -- worker-side operations ------------------------------------------
    def _try_run(self, worker: int, now: float) -> None:
        if self.busy[worker]:
            return
        task = self.queues.acquire(worker)
        if task is None:
            return
        self._start_task(worker, task, now)

    def _start_task(self, worker: int, task: Task, now: float) -> None:
        kind = self.policy.decide(task, worker)
        overhead = self.policy.decide_overhead(task)

        task.state = TaskState.RUNNING
        task.worker = worker
        task.t_started = now

        host_t0 = _time.perf_counter()
        task.execute(kind)
        host_dt = _time.perf_counter() - host_t0
        self.trace.host_seconds += host_dt

        duration = self.cost_model.duration(
            task, kind, self.machine_model, measured_wall=host_dt
        ) + self.machine_model.duration_of(overhead)
        self.busy[worker] = True
        self.events.push(
            now + duration,
            lambda t, w=worker, task=task: self._finish_task(w, task, t),
            tag="finish",
        )

    def _finish_task(self, worker: int, task: Task, now: float) -> None:
        self.busy[worker] = False
        task.state = TaskState.FINISHED
        task.t_finished = now
        assert task.decision is not None
        self.trace.record(
            Segment(
                worker,
                task.t_started,
                now,
                task.tid,
                task.decision,
                task.group,
            )
        )
        # Group bookkeeping + dependence release (may enqueue successors
        # at `now`; their events sort after this one).
        self.on_task_finished(task, now)
        self.events.push(
            now, lambda t, w=worker: self._try_run(w, t), tag="tryrun"
        )

    # -- event loop --------------------------------------------------------
    def run_until(
        self, predicate: Callable[[], bool], description: str = "barrier"
    ) -> float:
        """Pump events in time order until ``predicate()`` holds.

        Stops at the first instant the condition is satisfied (leaving
        unrelated future events queued, so other task groups keep
        running "in the background" of subsequent program phases).  If
        the event queue drains with the condition unsatisfied, the
        stall handler gets one chance to produce work (e.g. flushing GTB
        buffers); a second stall is a genuine deadlock.
        """
        stalled_once = False
        while not predicate():
            if not self.events:
                if not stalled_once and self.stall_handler is not None:
                    stalled_once = True
                    if self.stall_handler():
                        continue
                raise SchedulerError(
                    f"simulation stalled waiting for {description}: no "
                    "events left but the wait condition is unsatisfied "
                    "(buffered tasks never flushed, or a dependence "
                    "cycle)"
                )
            ev = self.events.pop()
            self.clock.advance_to(ev.time)
            ev.action(ev.time)
        # The master was blocked at the barrier until this instant.
        self.master_time = max(self.master_time, self.clock.now)
        return self.clock.now

    def drain(self) -> float:
        """Run every remaining event (used by the final barrier)."""
        while self.events:
            ev = self.events.pop()
            self.clock.advance_to(ev.time)
            ev.action(ev.time)
        self.master_time = max(self.master_time, self.clock.now)
        return self.clock.now

    # -- reporting -----------------------------------------------------------
    @property
    def makespan(self) -> float:
        """Completion time of the whole run (workers and master)."""
        return max(self.trace.makespan, self.master_time)
