"""Discrete-event simulated multicore machine (testbed substitute)."""

from .clock import VirtualClock
from .events import Event, EventQueue
from .machine import SimulatedMachine
from .topology import Topology
from .trace import ExecutionTrace, Segment

__all__ = [
    "VirtualClock",
    "Event",
    "EventQueue",
    "SimulatedMachine",
    "Topology",
    "ExecutionTrace",
    "Segment",
]
