"""Virtual time for the discrete-event machine.

The paper's experiments ran on real silicon and measured wall-clock time;
this reproduction replaces the 16-core Xeon with a deterministic
discrete-event simulation (see DESIGN.md section 2).  All simulated
timestamps are floating-point *virtual seconds* managed by
:class:`VirtualClock`, which enforces monotonicity — the single invariant
everything else (traces, energy integration, barrier semantics) builds
on.
"""

from __future__ import annotations

from ..runtime.errors import SchedulerError

__all__ = ["VirtualClock"]


class VirtualClock:
    """A monotone virtual clock measured in seconds."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0.0:
            raise SchedulerError(f"clock cannot start negative: {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance_to(self, t: float) -> float:
        """Move the clock forward to ``t``; rejects travel to the past."""
        if t < self._now - 1e-15:
            raise SchedulerError(
                f"virtual clock cannot go backwards: {t} < {self._now}"
            )
        if t > self._now:
            self._now = t
        return self._now

    def advance_by(self, dt: float) -> float:
        """Move the clock forward by a non-negative delta."""
        if dt < 0:
            raise SchedulerError(f"negative clock delta: {dt}")
        self._now += dt
        return self._now

    def advance_unchecked(self, t: float) -> None:
        """Trusting fast path for callers that already guarantee order.

        The simulated machine's event loop pops events in nondecreasing
        time order (the :class:`~repro.sim.events.EventQueue` enforces
        monotone pops), so re-checking monotonicity per event would only
        duplicate that guarantee on the hottest loop in the simulator.
        Anyone else should use :meth:`advance_to`.
        """
        if t > self._now:
            self._now = t

    def reset(self) -> None:
        self._now = 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VirtualClock(t={self._now:.9f})"
