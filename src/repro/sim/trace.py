"""Execution traces: the raw material for time, energy and Gantt views.

Every engine (simulated or threaded) records one :class:`Segment` per
executed task: which worker ran it, over which `[start, end)` interval,
with which decision.  The trace is the single source of truth from which

* the makespan (paper: "execution time") is derived,
* the energy model integrates busy/idle core power (paper: RAPL energy),
* per-worker utilization and load balance are reported, and
* ASCII Gantt charts are rendered for debugging/examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..runtime.errors import SchedulerError
from ..runtime.task import ExecutionKind

__all__ = ["Segment", "ExecutionTrace"]


@dataclass(frozen=True, slots=True)
class Segment:
    """One task execution on one worker over ``[start, end)`` seconds."""

    worker: int
    start: float
    end: float
    tid: int
    kind: ExecutionKind
    group: str | None = None

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class ExecutionTrace:
    """Append-only log of task executions plus master-side activity."""

    n_workers: int
    segments: list[Segment] = field(default_factory=list)
    #: Total virtual seconds the master spent in spawn/flush bookkeeping.
    master_busy: float = 0.0
    #: Wall-clock (host) seconds spent actually running task bodies;
    #: diagnostic only — virtual time is authoritative.
    host_seconds: float = 0.0

    def record(self, segment: Segment) -> None:
        if segment.end < segment.start:
            raise SchedulerError(
                f"segment ends before it starts: {segment}"
            )
        if not 0 <= segment.worker < self.n_workers:
            raise SchedulerError(
                f"segment worker {segment.worker} out of range"
            )
        self.segments.append(segment)

    # -- aggregate views -------------------------------------------------
    @property
    def makespan(self) -> float:
        """Virtual completion time of the last task (0 for empty traces)."""
        return max((s.end for s in self.segments), default=0.0)

    def busy_time(self, worker: int | None = None) -> float:
        """Total busy seconds for one worker or summed over all workers."""
        if worker is None:
            return sum(s.duration for s in self.segments)
        return sum(s.duration for s in self.segments if s.worker == worker)

    def busy_by_worker(self) -> list[float]:
        out = [0.0] * self.n_workers
        for s in self.segments:
            out[s.worker] += s.duration
        return out

    def utilization(self) -> float:
        """Aggregate busy fraction over the makespan window."""
        span = self.makespan
        if span <= 0:
            return 0.0
        return self.busy_time() / (span * self.n_workers)

    def tasks_by_kind(self) -> dict[ExecutionKind, int]:
        out: dict[ExecutionKind, int] = {k: 0 for k in ExecutionKind}
        for s in self.segments:
            out[s.kind] += 1
        return out

    def window(
        self, t0: float, t1: float, rebase: bool = False
    ) -> "ExecutionTrace":
        """Clip the trace to ``[t0, t1]``.

        ``rebase=True`` shifts the clipped segments so the window
        starts at time 0 — what meter sessions need, since their
        energy integration treats the window as a standalone interval.
        """
        if t1 < t0:
            raise SchedulerError(f"bad window [{t0}, {t1}]")
        clipped = ExecutionTrace(self.n_workers)
        shift = t0 if rebase else 0.0
        for s in self.segments:
            lo, hi = max(s.start, t0), min(s.end, t1)
            if hi > lo:
                clipped.record(
                    Segment(
                        s.worker,
                        lo - shift,
                        hi - shift,
                        s.tid,
                        s.kind,
                        s.group,
                    )
                )
        return clipped

    # -- rendering ---------------------------------------------------------
    def gantt(self, width: int = 72) -> str:
        """ASCII Gantt chart: one row per worker.

        ``#`` = accurate task, ``~`` = approximate, ``.`` = idle.
        Dropped tasks take zero time and do not appear.
        """
        span = self.makespan
        lines = []
        if span <= 0:
            return "(empty trace)"
        scale = width / span
        for w in range(self.n_workers):
            row = ["."] * width
            for s in self.segments:
                if s.worker != w or s.duration == 0:
                    continue
                lo = int(s.start * scale)
                hi = max(lo + 1, int(s.end * scale))
                ch = "#" if s.kind is ExecutionKind.ACCURATE else "~"
                for i in range(lo, min(hi, width)):
                    row[i] = ch
            lines.append(f"w{w:02d} |{''.join(row)}|")
        lines.append(f"     0{'':{max(0, width - 14)}}{span:.6f}s")
        return "\n".join(lines)
