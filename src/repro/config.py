"""Declarative runtime configuration: one frozen value object per run.

:class:`RuntimeConfig` captures everything :class:`~repro.runtime
.scheduler.Scheduler` needs — policy, worker count, machine model, cost
model, engine — as plain data.  Components are given either as registry
spec strings (``"gtb:buffer_size=16"``, ``"threaded"``; see
:mod:`repro.registry`) or as programmatic instances; spec-only configs
round-trip losslessly through :meth:`to_dict` / :meth:`from_dict`, which
is what makes :class:`~repro.experiment.ExperimentSpec` sweeps
serializable and process-parallelizable.

    >>> cfg = RuntimeConfig(policy="gtb:buffer_size=16", n_workers=8)
    >>> RuntimeConfig.from_dict(cfg.to_dict()) == cfg
    True
    >>> Scheduler(cfg)          # or Runtime(cfg), or Scheduler(policy=...)
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Any, Callable

from .registry import parse_spec, registry_for, resolve
from .runtime.errors import ConfigError, RegistryError

__all__ = ["RuntimeConfig", "component_name"]

#: Engine registry names that execute task bodies in worker processes
#: (the only backends where the data plane choice matters).
_PROCESS_ENGINES = frozenset({"process", "procpool", "processes"})

#: Valid data-plane specs: plane name -> allowed option validators.
_DATA_PLANES: dict[str, dict[str, Callable[[Any], bool]]] = {
    "pickle": {},
    "shm": {
        "min_bytes": lambda v: isinstance(v, int)
        and not isinstance(v, bool)
        and v >= 0,
    },
}


def _normalize_data_plane(value: Any) -> str:
    """Validate a ``data_plane`` value down to its canonical spec string.

    Unknown plane names and unknown/ill-typed options are rejected at
    config construction — the field is a deliberate API surface, not a
    kwargs pass-through.
    """
    if not isinstance(value, str):
        raise ConfigError(
            "data_plane must be a spec string "
            f"('pickle', 'shm', 'shm:min_bytes=8192'), got {value!r}"
        )
    try:
        name, options = parse_spec(value)
    except RegistryError as exc:
        raise ConfigError(f"invalid data_plane spec: {exc}") from exc
    if name not in _DATA_PLANES:
        raise ConfigError(
            f"unknown data plane {name!r}; "
            f"known: {sorted(_DATA_PLANES)}"
        )
    validators = _DATA_PLANES[name]
    for key, val in options.items():
        if key not in validators:
            raise ConfigError(
                f"unknown data_plane option {key!r} for {name!r}; "
                f"known: {sorted(validators) or 'none'}"
            )
        if not validators[key](val):
            raise ConfigError(
                f"invalid data_plane option {key}={val!r} for {name!r}"
            )
    return value


#: Valid compile-tier specs: tier name -> allowed option validators.
_COMPILE_TIERS: dict[str, dict[str, Callable[[Any], bool]]] = {
    "off": {},
    "specialize": {
        "cache_size": lambda v: isinstance(v, int)
        and not isinstance(v, bool)
        and v >= 1,
        "profile": lambda v: isinstance(v, bool),
        "chunks": lambda v: isinstance(v, int)
        and not isinstance(v, bool)
        and v >= 1,
    },
}


def _normalize_compile(value: Any) -> str:
    """Validate a ``compile`` value down to its canonical spec string."""
    if not isinstance(value, str):
        raise ConfigError(
            "compile must be a spec string ('off', 'specialize', "
            f"'specialize:cache_size=64'), got {value!r}"
        )
    try:
        name, options = parse_spec(value)
    except RegistryError as exc:
        raise ConfigError(f"invalid compile spec: {exc}") from exc
    if name not in _COMPILE_TIERS:
        raise ConfigError(
            f"unknown compile tier {name!r}; "
            f"known: {sorted(_COMPILE_TIERS)}"
        )
    validators = _COMPILE_TIERS[name]
    for key, val in options.items():
        if key not in validators:
            raise ConfigError(
                f"unknown compile option {key!r} for {name!r}; "
                f"known: {sorted(validators) or 'none'}"
            )
        if not validators[key](val):
            raise ConfigError(
                f"invalid compile option {key}={val!r} for {name!r}"
            )
    return value


def component_name(value: Any, default: str) -> str:
    """Display name of a config component: the spec string itself,
    ``describe()`` on instances that have it, else the type name."""
    if value is None:
        return default
    if isinstance(value, str):
        return value
    describe = getattr(value, "describe", None)
    return describe() if callable(describe) else type(value).__name__


@dataclass(frozen=True)
class RuntimeConfig:
    """Frozen description of one runtime instantiation.

    Parameters
    ----------
    policy:
        Significance policy spec or :class:`~repro.runtime.policies.base
        .Policy` instance.  Default: the significance-agnostic baseline.
    n_workers:
        Worker cores; the paper's evaluation uses 16.
    machine:
        Machine model spec/instance.  ``None`` (default) and spec
        strings are resized to ``n_workers`` cores; explicit instances
        are used as-is.
    cost_model:
        Task-duration strategy spec/instance (default ``"hybrid"``).
    engine:
        Execution backend spec/instance: ``"simulated"`` (default),
        ``"threaded"``, ``"process"`` (task bodies in a process
        pool), or ``"sequential"``.
    governor:
        Optional online energy controller spec/instance
        (``"governor:budget_j=1.2,interval=0.001"``); ``None``
        (default) runs open-loop.  See
        :class:`~repro.tuning.governor.EnergyBudgetGovernor`.
    tenants:
        Optional tuple of tenant specs for the serving layer
        (``("premium:name='alice'", "free:name='bob',budget_j=2.0")``;
        the ``"tenant"`` registry family, see
        :mod:`repro.serve.tenants`).  Ignored by :class:`Scheduler`;
        consumed by :class:`~repro.serve.server.TaskService` so one
        serializable config describes a whole multi-tenant service.
    cluster:
        Optional serve-cluster shape for the sharded serving layer: a
        ``"cluster:shards=4"`` spec string (the ``"cluster"`` registry
        family, see :mod:`repro.cluster.service`), a bare shard count
        (normalized to the spec string), or a programmatic
        :class:`~repro.cluster.service.ClusterSpec`.  Ignored by
        :class:`Scheduler`; consumed by
        :class:`~repro.cluster.service.ClusterService`.
    data_plane:
        How ndarray payloads cross the parent/worker boundary on
        multi-process engines: ``None`` (default — the engine spec
        decides, pickling unless it says ``shm=true``), ``"pickle"``
        (force pickling), or ``"shm"`` /
        ``"shm:min_bytes=8192"`` (zero-copy
        :class:`~repro.runtime.memory.SharedArrayPool` references for
        arrays of at least ``min_bytes`` bytes).  Validated at
        construction — unknown plane names or options raise
        :class:`ConfigError` — and applied by :meth:`build_engine` to
        the process-family engines; in-process engines (simulated,
        threaded) share memory natively and ignore it.
    compile:
        The compile tier: ``"off"`` (default — tasks run through the
        interpreted per-task significance branch) or ``"specialize"`` /
        ``"specialize:cache_size=64,profile=true,chunks=16"`` (the
        :class:`~repro.compiler.specialize.KernelSpecializer`:
        constant-fold the significance decision per ``(ratio, dvfs)``
        spec, inline the chosen variant into branch-free chunk loops,
        cache compiled bodies LRU).  Validated at construction;
        consumed by :class:`~repro.runtime.scheduler.Scheduler`
        (``spawn_specialized``) and requested at admission by
        :class:`~repro.serve.server.TaskService`.
    """

    policy: Any = "accurate"
    n_workers: int = 16
    machine: Any = None
    cost_model: Any = "hybrid"
    engine: Any = "simulated"
    governor: Any = None
    tenants: Any = None
    cluster: Any = None
    data_plane: Any = None
    compile: Any = "off"

    def __post_init__(self) -> None:
        if not isinstance(self.n_workers, int) or self.n_workers < 1:
            raise ConfigError(
                f"n_workers must be an int >= 1, got {self.n_workers!r}"
            )
        if self.tenants is not None:
            if isinstance(self.tenants, (str, bytes)) or not hasattr(
                self.tenants, "__iter__"
            ):
                raise ConfigError(
                    "tenants must be an iterable of tenant specs "
                    f"(or None), got {self.tenants!r}"
                )
            object.__setattr__(self, "tenants", tuple(self.tenants))
            for spec in self.tenants:
                if isinstance(spec, str):
                    try:
                        parse_spec(spec)
                    except RegistryError as exc:
                        raise ConfigError(
                            f"invalid tenant spec: {exc}"
                        ) from exc
        if isinstance(self.cluster, bool):
            raise ConfigError(
                f"cluster must be a spec string, a shard count or a "
                f"ClusterSpec, got {self.cluster!r}"
            )
        if isinstance(self.cluster, int):
            # Normalize the shard-count sugar to a spec string so the
            # config stays serializable.
            object.__setattr__(
                self, "cluster", f"cluster:shards={self.cluster}"
            )
        if isinstance(self.cluster, str):
            # Spec-parse only: the "cluster" registry family registers
            # lazily in repro.cluster.service (see build_cluster).
            try:
                parse_spec(self.cluster)
            except RegistryError as exc:
                raise ConfigError(
                    f"invalid cluster spec: {exc}"
                ) from exc
        if self.data_plane is not None:
            object.__setattr__(
                self,
                "data_plane",
                _normalize_data_plane(self.data_plane),
            )
        if self.compile is None:
            object.__setattr__(self, "compile", "off")
        if isinstance(self.compile, str):
            object.__setattr__(
                self, "compile", _normalize_compile(self.compile)
            )
        elif not hasattr(self.compile, "specialize_plan"):
            # Not a spec string and not a specializer instance: reject
            # with the spec-string message.
            _normalize_compile(self.compile)
        # Fail fast on unparseable/unknown spec strings: a config is a
        # value object and should be invalid at construction, not at
        # scheduler start.
        for kind, value in (
            ("policy", self.policy),
            ("machine", self.machine),
            ("cost-model", self.cost_model),
            ("engine", self.engine),
            ("governor", self.governor),
        ):
            if isinstance(value, str):
                try:
                    name, _ = parse_spec(value)
                    registry_for(kind).factory(name)
                except RegistryError as exc:
                    raise ConfigError(f"invalid {kind} spec: {exc}") from exc

    # -- derivation ------------------------------------------------------
    def replace(self, **changes: Any) -> "RuntimeConfig":
        """A copy with ``changes`` applied (validation re-runs)."""
        return replace(self, **changes)

    # -- serialization ---------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Plain-data form; requires every component to be a spec string.

        Programmatic instances cannot be serialized — pass registry
        specs (``policy="gtb:buffer_size=16"``) where round-tripping
        matters (JSON configs, process-parallel sweeps).
        """
        out: dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name == "tenants":
                if value is not None and not all(
                    isinstance(t, str) for t in value
                ):
                    raise ConfigError(
                        "RuntimeConfig.tenants holds programmatic "
                        "instances; only tenant spec strings serialize"
                    )
                out[f.name] = None if value is None else list(value)
                continue
            if f.name != "n_workers" and not (
                value is None or isinstance(value, str)
            ):
                raise ConfigError(
                    f"RuntimeConfig.{f.name} holds a programmatic "
                    f"{type(value).__name__} instance; only registry "
                    "spec strings serialize"
                )
            out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RuntimeConfig":
        """Inverse of :meth:`to_dict`; unknown keys raise."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(
                f"unknown RuntimeConfig keys {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        return cls(**data)

    # -- component builders ----------------------------------------------
    def build_policy(self):
        """A fresh policy instance (specs) or the given one (instances)."""
        return resolve("policy", self.policy)

    def build_machine(self):
        """The machine model, sized to ``n_workers`` unless given as an
        explicit instance."""
        if self.machine is None:
            from .energy.machine_model import XEON_E5_2650

            return XEON_E5_2650.with_workers(self.n_workers)
        machine = resolve("machine", self.machine)
        if isinstance(self.machine, str):
            machine = machine.with_workers(self.n_workers)
        return machine

    def build_cost_model(self):
        return resolve("cost-model", self.cost_model)

    def build_governor(self):
        """A fresh governor instance, or ``None`` for open-loop runs."""
        if self.governor is None:
            return None
        return resolve("governor", self.governor)

    def build_tenants(self) -> tuple:
        """Fresh tenant specs for the serving layer (empty when unset).

        Resolution is lazy: the ``"tenant"`` registry family lives in
        :mod:`repro.serve.tenants`, which is imported on first use so a
        bare ``repro.config`` import stays serve-free.
        """
        if self.tenants is None:
            return ()
        from .serve import tenants as _tenants  # noqa: F401 (registers)

        return tuple(resolve("tenant", t) for t in self.tenants)

    def build_cluster(self):
        """A fresh cluster shape, or ``None`` when unset.

        Resolution is lazy like :meth:`build_tenants`: the
        ``"cluster"`` registry family lives in
        :mod:`repro.cluster.service`, imported on first use.
        """
        if self.cluster is None:
            return None
        from .cluster.service import _resolve_cluster

        return _resolve_cluster(self.cluster)

    def build_compile(self):
        """A fresh compile-tier specializer, or ``None`` for ``"off"``.

        Resolution is lazy like :meth:`build_tenants`: the
        ``"compile"`` registry family lives in
        :mod:`repro.compiler.specialize`, imported on first use so a
        bare ``repro.config`` import stays compiler-free.
        """
        if not isinstance(self.compile, str):
            return self.compile  # programmatic specializer instance
        name, _ = parse_spec(self.compile)
        if name == "off":
            return None
        from .compiler import specialize as _specialize  # noqa: F401

        return resolve("compile", self.compile)

    def build_engine(
        self,
        machine,
        cost_model,
        policy,
        on_task_finished: Callable,
        stall_handler: Callable | None = None,
    ):
        """The execution engine, wired to the scheduler's callbacks.

        Engines need live callbacks, so unlike the other components they
        are always built here rather than by :func:`~repro.registry
        .resolve`.
        """
        if not isinstance(self.engine, str):
            return self.engine
        name, kwargs = parse_spec(self.engine)
        if self.data_plane is not None and name in _PROCESS_ENGINES:
            # The data_plane field is the deliberate API; explicit
            # engine-spec options (``"process:shm=true"``) still win.
            plane, options = parse_spec(self.data_plane)
            kwargs.setdefault("shm", plane == "shm")
            if "min_bytes" in options:
                kwargs.setdefault("shm_min_bytes", options["min_bytes"])
        factory = registry_for("engine").factory(name)
        return factory(
            self.n_workers,
            machine,
            cost_model,
            policy,
            on_task_finished,
            stall_handler,
            **kwargs,
        )

    # -- description -----------------------------------------------------
    def describe(self) -> str:
        """Compact human-readable summary for tables and logs."""
        text = (
            f"policy={component_name(self.policy, 'accurate')} "
            f"workers={self.n_workers} "
            f"engine={component_name(self.engine, 'simulated')}"
        )
        if self.governor is not None:
            text += f" governor={component_name(self.governor, 'none')}"
        if self.tenants:
            text += f" tenants={len(self.tenants)}"
        if self.cluster is not None:
            text += f" cluster={component_name(self.cluster, 'none')}"
        if self.data_plane is not None:
            text += f" data_plane={component_name(self.data_plane, 'none')}"
        if not (isinstance(self.compile, str) and self.compile == "off"):
            text += f" compile={component_name(self.compile, 'off')}"
        return text
