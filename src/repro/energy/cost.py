"""Task cost models: mapping task bodies to virtual durations.

The simulated engine needs a duration for every executed task.  Three
strategies are provided:

* :class:`AnalyticCost` — use the :class:`~repro.runtime.task.TaskCost`
  (work units) attached to the task.  Fully deterministic; the kernels in
  :mod:`repro.kernels` attach analytic operation counts, so experiment
  results are bit-reproducible.  Tasks without a cost raise.
* :class:`MeasuredCost` — time the real Python body with
  ``perf_counter`` and scale the wall time by ``scale`` (Python is
  roughly two orders of magnitude slower than the paper's C kernels; the
  default ``scale=1.0`` reports honest host time).  Nondeterministic but
  useful for ad-hoc workloads.
* :class:`HybridCost` — analytic when a cost is attached, measured
  otherwise.  This is the engine default: library kernels stay
  deterministic while user tasks "just work".
"""

from __future__ import annotations

import abc

from ..registry import register
from ..runtime.errors import CostModelError
from ..runtime.task import ExecutionKind, Task
from .machine_model import MachineModel

__all__ = ["CostModel", "AnalyticCost", "MeasuredCost", "HybridCost"]


class CostModel(abc.ABC):
    """Strategy turning (task, decision) into virtual seconds."""

    #: Whether the engine must measure host wall time around the body.
    needs_measurement: bool = False

    def wants_measurement(self, task: Task) -> bool:
        """Whether :meth:`duration` will use ``measured_wall`` for this
        task.  Engines skip the two ``perf_counter`` reads around the
        task body when this is False — noticeable for fine-grained task
        streams under the analytic/hybrid models."""
        return self.needs_measurement

    @abc.abstractmethod
    def duration(
        self,
        task: Task,
        kind: ExecutionKind,
        machine: MachineModel,
        measured_wall: float | None = None,
    ) -> float:
        """Virtual seconds the task occupies one core."""


@register("cost-model", "analytic")
class AnalyticCost(CostModel):
    """Deterministic durations from per-task work-unit annotations."""

    needs_measurement = False

    def __init__(self) -> None:
        # Cache of the last machine's inverse throughput: converting
        # work units to seconds is one multiply instead of a method
        # call + division per task (the machine never changes mid-run).
        self._machine: MachineModel | None = None
        self._inv_ops = 0.0

    def duration(
        self,
        task: Task,
        kind: ExecutionKind,
        machine: MachineModel,
        measured_wall: float | None = None,
    ) -> float:
        if kind is ExecutionKind.DROPPED:
            return 0.0
        cost = task.cost
        if cost is None:
            raise CostModelError(
                f"AnalyticCost requires a TaskCost on task {task.tid} "
                f"({getattr(task.fn, '__name__', '?')}); attach cost= or "
                "use HybridCost/MeasuredCost"
            )
        if machine is not self._machine:
            self._machine = machine
            self._inv_ops = 1.0 / machine.ops_per_second
        work = (
            cost.accurate
            if kind is ExecutionKind.ACCURATE
            else cost.approximate
        )
        return work * self._inv_ops


@register("cost-model", "measured")
class MeasuredCost(CostModel):
    """Durations from measured host wall time, optionally rescaled."""

    needs_measurement = True

    def __init__(self, scale: float = 1.0) -> None:
        if scale <= 0:
            raise CostModelError(f"scale must be positive, got {scale}")
        self.scale = scale

    def duration(
        self,
        task: Task,
        kind: ExecutionKind,
        machine: MachineModel,
        measured_wall: float | None = None,
    ) -> float:
        if kind is ExecutionKind.DROPPED:
            return 0.0
        if measured_wall is None:
            raise CostModelError(
                "MeasuredCost needs the engine to measure the body"
            )
        return measured_wall * self.scale


@register("cost-model", "hybrid")
class HybridCost(CostModel):
    """Analytic when annotated, measured otherwise (engine default)."""

    needs_measurement = True  # engine measures; analytic path ignores it

    def __init__(self, scale: float = 1.0) -> None:
        self._analytic = AnalyticCost()
        self._measured = MeasuredCost(scale)

    def wants_measurement(self, task: Task) -> bool:
        # Annotated tasks take the analytic path; measuring them would
        # be wasted perf_counter traffic.
        return task.cost is None

    def duration(
        self,
        task: Task,
        kind: ExecutionKind,
        machine: MachineModel,
        measured_wall: float | None = None,
    ) -> float:
        if task.cost is not None:
            return self._analytic.duration(task, kind, machine)
        return self._measured.duration(
            task, kind, machine, measured_wall
        )
