"""Energy accounting over execution traces (the likwid/RAPL substitute).

The paper: "the energy and power are measured using likwid to access the
Running Average Power Limit (RAPL) registers of the processors."  Here
energy is *integrated* from the execution trace and the machine power
model instead of read from MSRs:

    E = P_package_static * T
      + sum_cores [ busy_i * P_active + (T - busy_i) * P_idle ]

with ``T`` the window length (makespan for a full run).  The same
decomposition RAPL exposes (package / PP0-cores / DRAM) is reported so
the benchmark tables read like the paper's.

Every execution backend funnels its busy intervals here through the
shared :class:`~repro.runtime.accounting.AccountingCore` (DESIGN.md
section 6) — on the simulated engines the intervals are virtual time
and the integration is exact; on the threaded/process backends they
are measured wall-clock and the result is an estimate, labelled as
such in the engine docs.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from ..runtime.errors import EnergyModelError
from ..sim.trace import ExecutionTrace
from .machine_model import MachineModel

__all__ = ["EnergyReport", "EnergyMeter", "IntervalSampler"]


@dataclass(frozen=True)
class EnergyReport:
    """Energy breakdown for one measurement window (all Joules)."""

    window_s: float
    busy_s: float
    package_uncore_j: float
    dram_j: float
    core_active_j: float
    core_idle_j: float

    @property
    def cores_j(self) -> float:
        """PP0-style core-domain energy."""
        return self.core_active_j + self.core_idle_j

    @property
    def total_j(self) -> float:
        """Package + DRAM total — the number Figure 2 plots."""
        return self.package_uncore_j + self.dram_j + self.cores_j

    @property
    def average_power_w(self) -> float:
        if self.window_s <= 0:
            return 0.0
        return self.total_j / self.window_s

    def __add__(self, other: "EnergyReport") -> "EnergyReport":
        return EnergyReport(
            self.window_s + other.window_s,
            self.busy_s + other.busy_s,
            self.package_uncore_j + other.package_uncore_j,
            self.dram_j + other.dram_j,
            self.core_active_j + other.core_active_j,
            self.core_idle_j + other.core_idle_j,
        )

    @classmethod
    def from_trace(
        cls,
        trace: ExecutionTrace,
        machine: MachineModel,
        window_s: float | None = None,
    ) -> "EnergyReport":
        """Integrate the power model over a trace.

        ``window_s`` defaults to the trace makespan; passing a longer
        window accounts extra all-idle time (e.g. a master tail).
        """
        span = trace.makespan if window_s is None else float(window_s)
        if span < trace.makespan - 1e-12:
            raise EnergyModelError(
                f"window {span} shorter than trace makespan "
                f"{trace.makespan}"
            )
        n_cores = max(machine.n_cores, trace.n_workers)
        if trace.n_workers > machine.n_cores:
            raise EnergyModelError(
                f"trace has {trace.n_workers} workers but machine has "
                f"only {machine.n_cores} cores"
            )
        busy = trace.busy_time()
        return cls(
            window_s=span,
            busy_s=busy,
            package_uncore_j=machine.uncore_w
            * machine.topology.sockets
            * span,
            dram_j=machine.dram_w * machine.topology.sockets * span,
            core_active_j=busy * machine.core_active_w,
            core_idle_j=(n_cores * span - busy) * machine.core_idle_w,
        )


class EnergyMeter:
    """pyRAPL-style measurement sessions over a live trace.

    The engine exposes its trace and clock; ``begin()``/``end()`` bracket
    a window and integrate the machine model over it:

    >>> meter = EnergyMeter(machine)
    >>> meter.begin(trace, t0=clock.now)
    >>> ... run ...
    >>> report = meter.end(trace, t1=clock.now)
    """

    def __init__(self, machine: MachineModel) -> None:
        self.machine = machine
        self._t0: float | None = None

    def begin(self, trace: ExecutionTrace, t0: float) -> None:
        self._t0 = t0

    def end(self, trace: ExecutionTrace, t1: float) -> EnergyReport:
        if self._t0 is None:
            raise EnergyModelError("EnergyMeter.end() without begin()")
        t0, self._t0 = self._t0, None
        if t1 < t0:
            raise EnergyModelError(f"meter window [{t0}, {t1}] inverted")
        clipped = trace.window(t0, t1, rebase=True)
        return EnergyReport.from_trace(
            clipped, self.machine, window_s=t1 - t0
        )


class IntervalSampler:
    """Periodic energy sampling over a *live* trace (any backend).

    The feedback substrate of the
    :class:`~repro.tuning.governor.EnergyBudgetGovernor`: each
    :meth:`sample` call returns the energy spent since the previous
    sample.  Semantically it differences *cumulative* integrations (the
    same discipline RAPL counters force on real tooling) rather than
    integrating each interval in isolation — a task that was in flight
    at the previous sample lands in the trace later, and cumulative
    differencing attributes it to the interval in which it became
    visible instead of losing it.  The cumulative total is therefore
    exact at every sample point for all recorded work.

    The implementation is *incremental*: every engine records a
    segment at its finish time, so each segment known at sample time
    lies wholly in ``[0, t]`` and is consumed exactly once via an
    append-only cursor.  Per-tick cost is O(segments recorded since
    the last sample), not O(total trace) — the governor's feedback
    stays cheap even on long fine-grained runs, and on the threaded
    engine it runs under the engine lock without stalling workers.

    Backends record busy intervals on their own timeline (virtual
    seconds on the simulated machine, wall seconds on the threaded and
    process engines); the sampler is timeline-agnostic, which is what
    lets the governor close its loop on every backend.

    ``epochs`` may name a *live* list of
    :class:`~repro.energy.dvfs.DvfsEpoch` switches (e.g.
    ``accounting.dvfs_epochs``); each segment's active energy is then
    billed piecewise at the power point of every epoch it overlaps.
    """

    def __init__(
        self,
        machine: MachineModel,
        trace: ExecutionTrace,
        epochs: list | None = None,
    ) -> None:
        if trace.n_workers > machine.n_cores:
            raise EnergyModelError(
                f"trace has {trace.n_workers} workers but machine has "
                f"only {machine.n_cores} cores"
            )
        self.machine = machine
        self.trace = trace
        self.epochs = epochs
        self._last_t = 0.0
        self._cursor = 0
        self._cumulative = EnergyReport(0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        # factor -> active-core W, via the canonical scaling law
        # (MachineModel.scaled_frequency) so the feedback stream can
        # never diverge from the final energy_with_epochs integration.
        self._active_w_cache: dict[float, float] = {
            1.0: machine.core_active_w
        }

    @property
    def last_t(self) -> float:
        """Time of the most recent sample (0 before the first)."""
        return self._last_t

    @property
    def cumulative(self) -> EnergyReport:
        """Total energy up to the most recent sample."""
        return self._cumulative

    def _active_w(self, factor: float) -> float:
        """Active-core power at a frequency factor (cached; billed via
        :meth:`~repro.energy.machine_model.MachineModel
        .scaled_frequency`, the one home of the scaling law)."""
        watts = self._active_w_cache.get(factor)
        if watts is None:
            watts = self.machine.scaled_frequency(factor).core_active_w
            self._active_w_cache[factor] = watts
        return watts

    def _active_j(self, start: float, end: float) -> float:
        """Active-core energy of one busy interval under the epochs.

        Epochs are time-ordered, so the scan bisects to the epoch in
        force at ``start`` and stops at the first epoch beyond ``end``
        — per-segment cost is bounded by the epochs the segment
        actually overlaps, not the run's full switch history.
        """
        epochs = self.epochs
        if not epochs:
            return (end - start) * self.machine.core_active_w
        i = bisect.bisect_right(epochs, (start,)) - 1
        prev_t, prev_f = (0.0, 1.0) if i < 0 else epochs[i]
        total = 0.0
        # Index iteration, not a slice: a slice would copy the whole
        # remaining switch history per segment, defeating the bounded
        # cost promised above.
        for j in range(i + 1, len(epochs)):
            epoch = epochs[j]
            if epoch.t >= end:
                break
            overlap = min(end, epoch.t) - max(start, prev_t)
            if overlap > 0:
                total += overlap * self._active_w(prev_f)
            prev_t, prev_f = epoch.t, epoch.factor
        overlap = end - max(start, prev_t)
        if overlap > 0:
            total += overlap * self._active_w(prev_f)
        return total

    def sample(self, t: float) -> EnergyReport:
        """Energy spent in ``(last_t, t]``; advances the sample cursor.

        ``t`` must not run backwards; sampling twice at the same instant
        returns a zero-width (zero-energy) report.  Segments recorded
        after the last sample must not extend past ``t`` — true by
        construction on every engine (segments are recorded at their
        finish time, and the backends serialize recording against
        sampling).
        """
        if t < self._last_t:
            raise EnergyModelError(
                f"sampler time ran backwards: {t} < {self._last_t}"
            )
        machine = self.machine
        window = t - self._last_t
        busy = 0.0
        active_j = 0.0
        segments = self.trace.segments
        for seg in segments[self._cursor:]:
            busy += seg.duration
            active_j += self._active_j(seg.start, seg.end)
        self._cursor = len(segments)

        interval = EnergyReport(
            window_s=window,
            busy_s=busy,
            package_uncore_j=machine.uncore_w
            * machine.topology.sockets
            * window,
            dram_j=machine.dram_w * machine.topology.sockets * window,
            core_active_j=active_j,
            # Idle differencing: cores*t*P_idle - busy_total*P_idle,
            # incrementally (late-recorded busy subtracts here exactly
            # as it adds to the active channel).
            core_idle_j=(machine.n_cores * window - busy)
            * machine.core_idle_w,
        )
        self._last_t = t
        self._cumulative = self._cumulative + interval
        return interval
