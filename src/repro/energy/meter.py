"""Energy accounting over execution traces (the likwid/RAPL substitute).

The paper: "the energy and power are measured using likwid to access the
Running Average Power Limit (RAPL) registers of the processors."  Here
energy is *integrated* from the execution trace and the machine power
model instead of read from MSRs:

    E = P_package_static * T
      + sum_cores [ busy_i * P_active + (T - busy_i) * P_idle ]

with ``T`` the window length (makespan for a full run).  The same
decomposition RAPL exposes (package / PP0-cores / DRAM) is reported so
the benchmark tables read like the paper's.

Every execution backend funnels its busy intervals here through the
shared :class:`~repro.runtime.accounting.AccountingCore` (DESIGN.md
section 6) — on the simulated engines the intervals are virtual time
and the integration is exact; on the threaded/process backends they
are measured wall-clock and the result is an estimate, labelled as
such in the engine docs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..runtime.errors import EnergyModelError
from ..sim.trace import ExecutionTrace
from .machine_model import MachineModel

__all__ = ["EnergyReport", "EnergyMeter"]


@dataclass(frozen=True)
class EnergyReport:
    """Energy breakdown for one measurement window (all Joules)."""

    window_s: float
    busy_s: float
    package_uncore_j: float
    dram_j: float
    core_active_j: float
    core_idle_j: float

    @property
    def cores_j(self) -> float:
        """PP0-style core-domain energy."""
        return self.core_active_j + self.core_idle_j

    @property
    def total_j(self) -> float:
        """Package + DRAM total — the number Figure 2 plots."""
        return self.package_uncore_j + self.dram_j + self.cores_j

    @property
    def average_power_w(self) -> float:
        if self.window_s <= 0:
            return 0.0
        return self.total_j / self.window_s

    def __add__(self, other: "EnergyReport") -> "EnergyReport":
        return EnergyReport(
            self.window_s + other.window_s,
            self.busy_s + other.busy_s,
            self.package_uncore_j + other.package_uncore_j,
            self.dram_j + other.dram_j,
            self.core_active_j + other.core_active_j,
            self.core_idle_j + other.core_idle_j,
        )

    @classmethod
    def from_trace(
        cls,
        trace: ExecutionTrace,
        machine: MachineModel,
        window_s: float | None = None,
    ) -> "EnergyReport":
        """Integrate the power model over a trace.

        ``window_s`` defaults to the trace makespan; passing a longer
        window accounts extra all-idle time (e.g. a master tail).
        """
        span = trace.makespan if window_s is None else float(window_s)
        if span < trace.makespan - 1e-12:
            raise EnergyModelError(
                f"window {span} shorter than trace makespan "
                f"{trace.makespan}"
            )
        n_cores = max(machine.n_cores, trace.n_workers)
        if trace.n_workers > machine.n_cores:
            raise EnergyModelError(
                f"trace has {trace.n_workers} workers but machine has "
                f"only {machine.n_cores} cores"
            )
        busy = trace.busy_time()
        return cls(
            window_s=span,
            busy_s=busy,
            package_uncore_j=machine.uncore_w
            * machine.topology.sockets
            * span,
            dram_j=machine.dram_w * machine.topology.sockets * span,
            core_active_j=busy * machine.core_active_w,
            core_idle_j=(n_cores * span - busy) * machine.core_idle_w,
        )


class EnergyMeter:
    """pyRAPL-style measurement sessions over a live trace.

    The engine exposes its trace and clock; ``begin()``/``end()`` bracket
    a window and integrate the machine model over it:

    >>> meter = EnergyMeter(machine)
    >>> meter.begin(trace, t0=clock.now)
    >>> ... run ...
    >>> report = meter.end(trace, t1=clock.now)
    """

    def __init__(self, machine: MachineModel) -> None:
        self.machine = machine
        self._t0: float | None = None

    def begin(self, trace: ExecutionTrace, t0: float) -> None:
        self._t0 = t0

    def end(self, trace: ExecutionTrace, t1: float) -> EnergyReport:
        if self._t0 is None:
            raise EnergyModelError("EnergyMeter.end() without begin()")
        t0, self._t0 = self._t0, None
        if t1 < t0:
            raise EnergyModelError(f"meter window [{t0}, {t1}] inverted")
        clipped = trace.window(t0, t1, rebase=True)
        return EnergyReport.from_trace(
            clipped, self.machine, window_s=t1 - t0
        )
