"""Energy substrate: machine model, cost models, simulated RAPL, DVFS.

Substitutes the paper's likwid/RAPL measurements (see DESIGN.md
section 2): energy is integrated from execution traces with an explicit
Xeon-E5-2650-like power model instead of sampled from hardware MSRs.
"""

from .cost import AnalyticCost, CostModel, HybridCost, MeasuredCost
from .dvfs import DvfsOutcome, DvfsPlan, replay_with_dvfs
from .machine_model import XEON_E5_2650, MachineModel
from .meter import EnergyMeter, EnergyReport
from .rapl import (
    COUNTER_WRAP,
    ENERGY_UNIT_J,
    RaplDomain,
    SimulatedRapl,
    rapl_delta,
)

__all__ = [
    "MachineModel",
    "XEON_E5_2650",
    "CostModel",
    "AnalyticCost",
    "MeasuredCost",
    "HybridCost",
    "EnergyMeter",
    "EnergyReport",
    "SimulatedRapl",
    "RaplDomain",
    "rapl_delta",
    "ENERGY_UNIT_J",
    "COUNTER_WRAP",
    "DvfsPlan",
    "DvfsOutcome",
    "replay_with_dvfs",
]
