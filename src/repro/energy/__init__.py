"""Energy substrate: machine model, cost models, simulated RAPL, DVFS.

Substitutes the paper's likwid/RAPL measurements (see DESIGN.md
section 2): energy is integrated from execution traces with an explicit
Xeon-E5-2650-like power model instead of sampled from hardware MSRs.
The interval samplers (:class:`~repro.energy.meter.IntervalSampler`,
:class:`~repro.energy.rapl.RaplSampler`) expose the same integration as
a periodic feedback stream, which is what the online
:class:`~repro.tuning.governor.EnergyBudgetGovernor` closes its control
loop on.
"""

from .cost import AnalyticCost, CostModel, HybridCost, MeasuredCost
from .dvfs import (
    DEFAULT_FREQUENCY_TABLE,
    DvfsEpoch,
    DvfsOutcome,
    DvfsPlan,
    FrequencyTable,
    best_factor,
    energy_with_epochs,
    predicted_energy,
    replay_with_dvfs,
)
from .machine_model import XEON_E5_2650, MachineModel
from .meter import EnergyMeter, EnergyReport, IntervalSampler
from .rapl import (
    COUNTER_WRAP,
    ENERGY_UNIT_J,
    RaplDomain,
    RaplSampler,
    SimulatedRapl,
    rapl_delta,
)

__all__ = [
    "MachineModel",
    "XEON_E5_2650",
    "CostModel",
    "AnalyticCost",
    "MeasuredCost",
    "HybridCost",
    "EnergyMeter",
    "EnergyReport",
    "IntervalSampler",
    "SimulatedRapl",
    "RaplDomain",
    "RaplSampler",
    "rapl_delta",
    "ENERGY_UNIT_J",
    "COUNTER_WRAP",
    "DvfsPlan",
    "DvfsOutcome",
    "replay_with_dvfs",
    "FrequencyTable",
    "DEFAULT_FREQUENCY_TABLE",
    "DvfsEpoch",
    "energy_with_epochs",
    "predicted_energy",
    "best_factor",
]
