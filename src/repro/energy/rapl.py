"""Simulated RAPL (Running Average Power Limit) counter interface.

The paper reads energy through likwid, which in turn reads the RAPL MSRs
(``MSR_PKG_ENERGY_STATUS``, ``MSR_PP0_ENERGY_STATUS``,
``MSR_DRAM_ENERGY_STATUS``).  This module exposes the *same register
semantics* on top of the simulated machine:

* counters tick in units of ``ENERGY_UNIT_J`` (15.3 µJ, the common
  ``1/2^16`` J Sandy-Bridge unit),
* registers are 32-bit and wrap around, exactly like the hardware —
  consumers must handle wrap when differencing two reads,
* domains are per-socket ``package-N`` / ``pp0-N`` (cores) / ``dram-N``.

It exists so downstream code written against a pyRAPL-style counter API
ports over unchanged, and so the wrap-around handling that real energy
tooling needs is exercised by tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..runtime.errors import EnergyModelError
from ..sim.trace import ExecutionTrace
from .machine_model import MachineModel

__all__ = ["RaplDomain", "SimulatedRapl", "RaplSampler", "rapl_delta"]

#: Energy status register LSB: 1/2**16 Joule (Intel SDM, common unit).
ENERGY_UNIT_J = 1.0 / (1 << 16)

#: Register width: energy-status registers are 32-bit counters.
COUNTER_WRAP = 1 << 32


def rapl_delta(before: int, after: int) -> int:
    """Counter difference handling 32-bit wrap-around."""
    if not (0 <= before < COUNTER_WRAP and 0 <= after < COUNTER_WRAP):
        raise EnergyModelError("RAPL counters are 32-bit unsigned")
    return (after - before) % COUNTER_WRAP


@dataclass(frozen=True)
class RaplDomain:
    """One RAPL power domain (e.g. ``package-0``)."""

    kind: str  # "package" | "pp0" | "dram"
    socket: int

    @property
    def name(self) -> str:
        return f"{self.kind}-{self.socket}"


class SimulatedRapl:
    """Energy-status registers backed by the trace-driven power model.

    Reads are *stateless projections* of a trace at a given virtual time:
    ``read(domain, trace, t)`` returns the register value as if the MSR
    were sampled at virtual time ``t``.
    """

    def __init__(self, machine: MachineModel) -> None:
        self.machine = machine

    def domains(self) -> list[RaplDomain]:
        out = []
        for s in range(self.machine.topology.sockets):
            out.append(RaplDomain("package", s))
            out.append(RaplDomain("pp0", s))
            out.append(RaplDomain("dram", s))
        return out

    # ------------------------------------------------------------------
    def _energy_j(
        self, domain: RaplDomain, trace: ExecutionTrace, t: float
    ) -> float:
        """Joules consumed by a domain over virtual [0, t]."""
        if t < 0:
            raise EnergyModelError(f"negative sample time {t}")
        m = self.machine
        if domain.socket >= m.topology.sockets:
            raise EnergyModelError(f"unknown domain {domain.name}")
        cores = m.topology.cores_of(domain.socket)
        clipped = trace.window(0.0, t)
        busy = sum(
            clipped.busy_time(c) for c in cores if c < clipped.n_workers
        )
        n_cores = len(cores)
        core_j = busy * m.core_active_w + (n_cores * t - busy) * m.core_idle_w

        if domain.kind == "pp0":
            return core_j
        if domain.kind == "dram":
            return m.dram_w * t
        if domain.kind == "package":
            return core_j + m.uncore_w * t
        raise EnergyModelError(f"unknown RAPL domain kind {domain.kind!r}")

    def read(
        self, domain: RaplDomain, trace: ExecutionTrace, t: float
    ) -> int:
        """Sample a register: energy in RAPL units, 32-bit wrapped."""
        units = int(self._energy_j(domain, trace, t) / ENERGY_UNIT_J)
        return units % COUNTER_WRAP

    def read_joules_between(
        self,
        domain: RaplDomain,
        trace: ExecutionTrace,
        t0: float,
        t1: float,
    ) -> float:
        """Convenience: differenced, wrap-corrected energy in Joules."""
        before = self.read(domain, trace, t0)
        after = self.read(domain, trace, t1)
        return rapl_delta(before, after) * ENERGY_UNIT_J

    def sampler(self, trace: ExecutionTrace) -> "RaplSampler":
        """A stateful interval sampler over every domain (likwid-style)."""
        return RaplSampler(self, trace)


class RaplSampler:
    """Periodic all-domain sampling with wrap-corrected differencing.

    The MSR-flavoured sibling of
    :class:`~repro.energy.meter.IntervalSampler`: each :meth:`sample`
    returns per-domain Joules since the previous sample, handling the
    32-bit counter wrap exactly as real likwid/pyRAPL loops must.  The
    first sample covers ``[0, t]``.
    """

    def __init__(self, rapl: SimulatedRapl, trace: ExecutionTrace) -> None:
        self.rapl = rapl
        self.trace = trace
        self._last_t = 0.0
        self._last: dict[str, int] = {
            d.name: rapl.read(d, trace, 0.0) for d in rapl.domains()
        }

    @property
    def last_t(self) -> float:
        return self._last_t

    def sample(self, t: float) -> dict[str, float]:
        """Per-domain Joules spent in ``(last_t, t]``."""
        if t < self._last_t:
            raise EnergyModelError(
                f"sampler time ran backwards: {t} < {self._last_t}"
            )
        out: dict[str, float] = {}
        for domain in self.rapl.domains():
            now = self.rapl.read(domain, self.trace, t)
            out[domain.name] = (
                rapl_delta(self._last[domain.name], now) * ENERGY_UNIT_J
            )
            self._last[domain.name] = now
        self._last_t = t
        return out
