"""Machine performance/power model (the testbed substitute).

The paper measured energy with likwid on the RAPL registers of a
2-socket Intel Xeon E5-2650 (8 cores/socket, 2.0 GHz, 95 W TDP per
package).  Offline reproduction cannot read RAPL, so this module defines
an explicit first-order model with the two energy channels that drive the
paper's results:

* **time-proportional power** — package uncore + DRAM + idle-core power
  burns energy for the entire makespan, so *finishing earlier saves
  energy*;
* **work-proportional power** — the active-minus-idle core power burns
  energy per unit of computational work, so *running cheaper (approximate)
  task bodies saves energy*.

Both channels shrink when tasks are approximated or dropped, which is
exactly the mechanism behind Figure 2's energy column.  The default
constants approximate an E5-2650: 8 × 9.4 W active cores + 14 W uncore
≈ 89 W per fully-busy package, idle package ≈ 26 W, plus 6 W per DRAM
channel group.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..registry import register
from ..runtime.errors import EnergyModelError
from ..sim.topology import Topology

__all__ = ["MachineModel", "XEON_E5_2650", "make_machine"]


@dataclass(frozen=True)
class MachineModel:
    """Performance and power parameters of the simulated machine."""

    name: str = "xeon-e5-2650-sim"
    topology: Topology = Topology(sockets=2, cores_per_socket=8)
    #: Core clock in GHz (only used for reporting and DVFS scaling).
    frequency_ghz: float = 2.0
    #: Abstract work units one core retires per second at nominal
    #: frequency.  Work units are "simple scalar operations"; 2 GHz with
    #: ~1 op/cycle sustained gives 2e9.
    ops_per_second: float = 2.0e9
    #: Power of a core actively executing (W).
    core_active_w: float = 9.4
    #: Power of an idle (halted) core (W).
    core_idle_w: float = 1.5
    #: Per-socket uncore/static package power (W).
    uncore_w: float = 14.0
    #: Per-socket DRAM power (W), counted like RAPL's DRAM domain.
    dram_w: float = 6.0

    def __post_init__(self) -> None:
        if self.ops_per_second <= 0:
            raise EnergyModelError(
                f"ops_per_second must be positive, got {self.ops_per_second}"
            )
        if self.frequency_ghz <= 0:
            raise EnergyModelError(
                f"frequency must be positive, got {self.frequency_ghz}"
            )
        for label, value in [
            ("core_active_w", self.core_active_w),
            ("core_idle_w", self.core_idle_w),
            ("uncore_w", self.uncore_w),
            ("dram_w", self.dram_w),
        ]:
            if value < 0:
                raise EnergyModelError(f"{label} must be >= 0, got {value}")
        if self.core_idle_w > self.core_active_w:
            raise EnergyModelError(
                "idle core power exceeds active core power"
            )

    # -- performance -------------------------------------------------------
    def duration_of(self, work_units: float) -> float:
        """Virtual seconds one core needs for ``work_units`` of work."""
        if work_units < 0:
            raise EnergyModelError(f"negative work: {work_units}")
        return work_units / self.ops_per_second

    # -- power -------------------------------------------------------------
    @property
    def n_cores(self) -> int:
        return self.topology.n_cores

    def package_static_w(self) -> float:
        """Time-proportional power across all sockets (uncore + DRAM)."""
        return (self.uncore_w + self.dram_w) * self.topology.sockets

    def busy_extra_w(self) -> float:
        """Extra power of a busy core over an idle one."""
        return self.core_active_w - self.core_idle_w

    def all_idle_w(self) -> float:
        """Whole-machine floor power (everything idle)."""
        return self.package_static_w() + self.core_idle_w * self.n_cores

    def tdp_w(self) -> float:
        """Whole-machine power with every core active (sanity metric)."""
        return self.package_static_w() + self.core_active_w * self.n_cores

    # -- derivation --------------------------------------------------------
    def with_workers(self, n_workers: int) -> "MachineModel":
        """Resize the topology to host ``n_workers`` cores."""
        topo = Topology.for_workers(
            n_workers, self.topology.cores_per_socket
        )
        return replace(self, topology=topo)

    def scaled_frequency(self, factor: float) -> "MachineModel":
        """DVFS: scale frequency by ``factor``.

        Dynamic (active-minus-idle) power scales ~ f^3 (P = C V^2 f with
        V roughly proportional to f); throughput scales linearly.  Static
        and idle power are left unchanged — which is why racing-to-idle
        versus slow-and-steady is a genuine trade-off (paper section 6
        lists DVFS exploration as future work; see
        :mod:`repro.energy.dvfs`).
        """
        if factor <= 0:
            raise EnergyModelError(f"frequency factor must be > 0: {factor}")
        return replace(
            self,
            name=f"{self.name}@x{factor:.2f}",
            frequency_ghz=self.frequency_ghz * factor,
            ops_per_second=self.ops_per_second * factor,
            core_active_w=self.core_idle_w
            + (self.core_active_w - self.core_idle_w) * factor**3,
        )


#: The paper's testbed, as a model instance.
XEON_E5_2650 = MachineModel()


@register("machine", "xeon-e5-2650", "xeon", "default")
def make_machine(**overrides) -> MachineModel:
    """Registry factory: the testbed model with field overrides.

    Spec kwargs map onto :class:`MachineModel` fields, so e.g.
    ``machine="xeon:frequency_ghz=2.5,core_active_w=11.0"`` describes a
    what-if testbed while remaining a serializable string.
    """
    return replace(XEON_E5_2650, **overrides) if overrides else XEON_E5_2650
