"""DVFS what-if modelling (paper section 6, future work).

"In the future, we wish to explore more optimization scenarios, such as
DVFS in conjunction with suitable runtime policies for executing
approximate (and more light-weight) task versions on the slower but also
less power-hungry CPUs."

This module implements that scenario analytically so the ablation
benchmark can quantify it: a :class:`DvfsPlan` assigns a frequency
multiplier per execution kind; :func:`replay_with_dvfs` stretches each
trace segment by ``1/f`` and re-integrates energy with the corresponding
power point (dynamic power ~ f^3).  The replay keeps the schedule's
structure (same workers, same order) and reports the energy/makespan
trade-off of running approximate tasks on downclocked cores.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..runtime.errors import EnergyModelError
from ..runtime.task import ExecutionKind
from ..sim.trace import ExecutionTrace, Segment
from .machine_model import MachineModel
from .meter import EnergyReport

__all__ = ["DvfsPlan", "DvfsOutcome", "replay_with_dvfs"]


@dataclass(frozen=True)
class DvfsPlan:
    """Frequency multipliers per execution kind (1.0 = nominal)."""

    accurate: float = 1.0
    approximate: float = 1.0

    def __post_init__(self) -> None:
        for f in (self.accurate, self.approximate):
            if f <= 0:
                raise EnergyModelError(f"frequency factor must be > 0: {f}")

    def factor_for(self, kind: ExecutionKind) -> float:
        if kind is ExecutionKind.ACCURATE:
            return self.accurate
        return self.approximate


@dataclass
class DvfsOutcome:
    """Replayed schedule metrics under a DVFS plan."""

    makespan_s: float
    energy: EnergyReport
    stretched: ExecutionTrace = field(repr=False, default=None)  # type: ignore[assignment]


def replay_with_dvfs(
    trace: ExecutionTrace, machine: MachineModel, plan: DvfsPlan
) -> DvfsOutcome:
    """Re-time a finished schedule under per-kind frequency scaling.

    Per worker, segments are replayed back-to-back preserving order;
    a segment of kind *k* takes ``duration / f_k`` and burns active power
    ``P_idle + (P_active - P_idle) * f_k**3`` over the stretched
    interval.  Idle gaps are compressed (work-conserving replay), which
    models a runtime that re-packs tasks after slowing some down.
    """
    per_worker_end = [0.0] * trace.n_workers
    stretched = ExecutionTrace(trace.n_workers)
    active_j = 0.0
    ordered = sorted(trace.segments, key=lambda s: (s.start, s.tid))
    for seg in ordered:
        f = plan.factor_for(seg.kind)
        dur = seg.duration / f
        start = per_worker_end[seg.worker]
        end = start + dur
        per_worker_end[seg.worker] = end
        stretched.record(
            Segment(seg.worker, start, end, seg.tid, seg.kind, seg.group)
        )
        dyn_w = machine.core_idle_w + machine.busy_extra_w() * f**3
        active_j += dur * (dyn_w - machine.core_idle_w)

    span = stretched.makespan
    busy = stretched.busy_time()
    report = EnergyReport(
        window_s=span,
        busy_s=busy,
        package_uncore_j=machine.uncore_w * machine.topology.sockets * span,
        dram_j=machine.dram_w * machine.topology.sockets * span,
        core_active_j=active_j,
        core_idle_j=(machine.n_cores * span - busy) * machine.core_idle_w,
    )
    return DvfsOutcome(makespan_s=span, energy=report, stretched=stretched)
