"""DVFS modelling: what-if replay and online per-frequency cost scaling.

Paper section 6 (future work): "In the future, we wish to explore more
optimization scenarios, such as DVFS in conjunction with suitable
runtime policies for executing approximate (and more light-weight) task
versions on the slower but also less power-hungry CPUs."

Two faces of that scenario live here:

* **Offline what-if replay** — a :class:`DvfsPlan` assigns a frequency
  multiplier per execution kind; :func:`replay_with_dvfs` stretches each
  trace segment by ``1/f`` and re-integrates energy with the
  corresponding power point (dynamic power ~ f^3).  The replay keeps the
  schedule's structure and reports the energy/makespan trade-off of
  running approximate tasks on downclocked cores.
* **Online per-frequency cost models** — the substrate the
  :class:`~repro.tuning.governor.EnergyBudgetGovernor` actuates while a
  run executes.  A :class:`FrequencyTable` is the discrete set of legal
  frequency factors (every request is clamped to a table step, like a
  cpufreq driver); :class:`DvfsEpoch` records a mid-run switch;
  :func:`energy_with_epochs` integrates a trace piecewise so each epoch
  is billed at its own power point; :func:`predicted_energy` /
  :func:`best_factor` are the EXCESS-style per-frequency power models
  (deliverable D2.3) the governor uses to choose a frequency for the
  *remaining* work.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, NamedTuple, Sequence

from ..runtime.errors import EnergyModelError
from ..runtime.task import ExecutionKind
from ..sim.trace import ExecutionTrace, Segment
from .machine_model import MachineModel
from .meter import EnergyReport

__all__ = [
    "DvfsPlan",
    "DvfsOutcome",
    "replay_with_dvfs",
    "FrequencyTable",
    "DEFAULT_FREQUENCY_TABLE",
    "DvfsEpoch",
    "energy_with_epochs",
    "predicted_energy",
    "best_factor",
]


@dataclass(frozen=True)
class DvfsPlan:
    """Frequency multipliers per execution kind (1.0 = nominal)."""

    accurate: float = 1.0
    approximate: float = 1.0

    def __post_init__(self) -> None:
        for f in (self.accurate, self.approximate):
            if f <= 0:
                raise EnergyModelError(f"frequency factor must be > 0: {f}")

    def factor_for(self, kind: ExecutionKind) -> float:
        if kind is ExecutionKind.ACCURATE:
            return self.accurate
        return self.approximate


@dataclass
class DvfsOutcome:
    """Replayed schedule metrics under a DVFS plan."""

    makespan_s: float
    energy: EnergyReport
    stretched: ExecutionTrace = field(repr=False, default=None)  # type: ignore[assignment]


def replay_with_dvfs(
    trace: ExecutionTrace, machine: MachineModel, plan: DvfsPlan
) -> DvfsOutcome:
    """Re-time a finished schedule under per-kind frequency scaling.

    Per worker, segments are replayed back-to-back preserving order;
    a segment of kind *k* takes ``duration / f_k`` and burns active power
    ``P_idle + (P_active - P_idle) * f_k**3`` over the stretched
    interval.  Idle gaps are compressed (work-conserving replay), which
    models a runtime that re-packs tasks after slowing some down.
    """
    per_worker_end = [0.0] * trace.n_workers
    stretched = ExecutionTrace(trace.n_workers)
    active_j = 0.0
    ordered = sorted(trace.segments, key=lambda s: (s.start, s.tid))
    for seg in ordered:
        f = plan.factor_for(seg.kind)
        dur = seg.duration / f
        start = per_worker_end[seg.worker]
        end = start + dur
        per_worker_end[seg.worker] = end
        stretched.record(
            Segment(seg.worker, start, end, seg.tid, seg.kind, seg.group)
        )
        dyn_w = machine.core_idle_w + machine.busy_extra_w() * f**3
        active_j += dur * (dyn_w - machine.core_idle_w)

    span = stretched.makespan
    busy = stretched.busy_time()
    report = EnergyReport(
        window_s=span,
        busy_s=busy,
        package_uncore_j=machine.uncore_w * machine.topology.sockets * span,
        dram_j=machine.dram_w * machine.topology.sockets * span,
        core_active_j=active_j,
        core_idle_j=(machine.n_cores * span - busy) * machine.core_idle_w,
    )
    return DvfsOutcome(makespan_s=span, energy=report, stretched=stretched)


# ----------------------------------------------------------------------
# Online DVFS: frequency tables, epochs and per-frequency cost models
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FrequencyTable:
    """The discrete frequency factors a (simulated) cpufreq driver offers.

    Factors are multipliers of the machine model's nominal frequency;
    1.0 must be a member so the nominal state is always reachable.
    Requests between steps are clamped to the *nearest* step
    (equidistant requests round down, the conservative choice for a
    power governor).
    """

    factors: tuple[float, ...] = (0.6, 0.8, 1.0, 1.2)

    def __post_init__(self) -> None:
        if not self.factors:
            raise EnergyModelError("frequency table is empty")
        ordered = tuple(sorted(self.factors))
        if any(f <= 0 for f in ordered):
            raise EnergyModelError(
                f"frequency factors must be > 0: {self.factors}"
            )
        if len(set(ordered)) != len(ordered):
            raise EnergyModelError(
                f"duplicate frequency factors: {self.factors}"
            )
        if 1.0 not in ordered:
            raise EnergyModelError(
                f"frequency table must contain the nominal factor 1.0: "
                f"{self.factors}"
            )
        object.__setattr__(self, "factors", ordered)

    def clamp(self, factor: float) -> float:
        """Snap a requested factor to the nearest table step.

        Out-of-range requests clamp to the table edges; exact midpoints
        between two steps resolve to the lower (slower) step.
        """
        if factor != factor:  # NaN guard: a broken controller input
            raise EnergyModelError("cannot clamp NaN frequency factor")
        best = self.factors[0]
        best_d = abs(factor - best)
        for f in self.factors[1:]:
            d = abs(factor - f)
            if d < best_d:  # strict: ties keep the lower step
                best, best_d = f, d
        return best

    @property
    def min_factor(self) -> float:
        return self.factors[0]

    @property
    def max_factor(self) -> float:
        return self.factors[-1]

    def __iter__(self):
        return iter(self.factors)


#: The default table the governor actuates: two downclocked states, the
#: nominal state and one turbo step.
DEFAULT_FREQUENCY_TABLE = FrequencyTable()


class DvfsEpoch(NamedTuple):
    """One online frequency switch: from ``t`` onward, run at ``factor``."""

    t: float
    factor: float


def energy_with_epochs(
    trace: ExecutionTrace,
    machine: MachineModel,
    epochs: Sequence[DvfsEpoch],
    window_s: float | None = None,
) -> EnergyReport:
    """Integrate energy over a trace under a piecewise DVFS timeline.

    Each epoch bills its window at ``machine.scaled_frequency(factor)``
    — active-core power scales ~``f^3`` while static/idle power is
    frequency-independent, the same per-frequency power model the
    what-if replay uses.  The trace's segment durations are taken as
    recorded (the engine already stretched them when it switched
    frequency); only the *power attribution* varies per epoch.

    ``epochs`` may be empty (pure nominal integration) and need not
    start at t=0 — the span before the first epoch is billed at
    nominal frequency.  Zero-length epochs contribute zero energy.
    """
    span = trace.makespan if window_s is None else float(window_s)
    if span < trace.makespan - 1e-12:
        raise EnergyModelError(
            f"window {span} shorter than trace makespan {trace.makespan}"
        )
    ordered = sorted(epochs, key=lambda e: e.t)
    for e in ordered:
        if e.factor <= 0:
            raise EnergyModelError(
                f"frequency factor must be > 0: {e.factor}"
            )
        if e.t < 0:
            raise EnergyModelError(f"negative epoch time {e.t}")
    # Build the piecewise timeline: [(t0, t1, factor), ...] covering
    # [0, span].  Before the first epoch the machine runs at nominal.
    bounds: list[tuple[float, float, float]] = []
    prev_t, prev_f = 0.0, 1.0
    for e in ordered:
        t = min(e.t, span)
        if t > prev_t:
            bounds.append((prev_t, t, prev_f))
        prev_t = max(prev_t, t)
        prev_f = e.factor
    if span > prev_t:
        bounds.append((prev_t, span, prev_f))

    total: EnergyReport | None = None
    for t0, t1, f in bounds:
        piece_machine = (
            machine if f == 1.0 else machine.scaled_frequency(f)
        )
        piece = EnergyReport.from_trace(
            trace.window(t0, t1, rebase=True),
            piece_machine,
            window_s=t1 - t0,
        )
        total = piece if total is None else total + piece
    if total is None:  # span == 0: an empty, zero-length window
        total = EnergyReport(0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    return total


def predicted_energy(
    machine: MachineModel,
    factor: float,
    busy_nominal_s: float,
    width: int,
) -> float:
    """Predicted Joules to retire ``busy_nominal_s`` of nominal-frequency
    work on ``width`` parallel cores running at ``factor``.

    The per-frequency cost model: elapsed time stretches by ``1/factor``
    and is paid at the whole-machine idle floor (static + all cores'
    idle power), while the active-core *extra* power scales ``f^3`` over
    busy time ``busy/f`` — so dynamic energy scales ``f^2``.  This is
    the analytic core of the EXCESS per-frequency power models and is
    what makes "race-to-idle versus slow-and-steady" a computable
    trade-off rather than folklore.
    """
    if factor <= 0:
        raise EnergyModelError(f"frequency factor must be > 0: {factor}")
    if busy_nominal_s < 0:
        raise EnergyModelError(f"negative work: {busy_nominal_s}")
    if width < 1:
        raise EnergyModelError(f"width must be >= 1, got {width}")
    elapsed = busy_nominal_s / (width * factor)
    static_j = machine.all_idle_w() * elapsed
    dynamic_j = machine.busy_extra_w() * factor**2 * busy_nominal_s
    return static_j + dynamic_j


def best_factor(
    machine: MachineModel,
    busy_nominal_s: float,
    width: int,
    table: FrequencyTable | Iterable[float] = DEFAULT_FREQUENCY_TABLE,
) -> float:
    """The table step minimizing :func:`predicted_energy`.

    Ties resolve to the *higher* frequency (finish sooner at equal
    energy).  With zero remaining work every step predicts zero, so the
    nominal factor is returned.
    """
    factors = tuple(table)
    if busy_nominal_s == 0:
        return 1.0 if 1.0 in factors else factors[-1]
    best_f = factors[0]
    best_j = math.inf
    for f in sorted(factors):
        j = predicted_energy(machine, f, busy_nominal_s, width)
        if j < best_j or (j == best_j and f > best_f):
            best_f, best_j = f, j
    return best_f
