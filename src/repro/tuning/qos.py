"""QoS calibration: choosing the ratio knob to meet a quality target.

The paper's intro argues the accurate-task ratio "can be an open
parameter of a kernel or an entire application, which can take different
values in each invocation, or be changed interactively by the user";
Green [Baek & Chilimbi, PLDI 2010] (related work, section 5.1) built
exactly this loop: calibrate a QoS model offline, pick the cheapest
configuration meeting the target, re-calibrate when violations appear.

:class:`QosTuner` reproduces that controller for the significance
runtime.  Given a *probe* function ``ratio -> (quality_loss, energy)``
(both lower-is-better; quality loss in the same units the benchmark's
metric reports), it:

1. **calibrates** over a ratio grid, recording the measured frontier;
2. **chooses** the smallest-energy ratio whose measured quality loss is
   within the target;
3. **monitors** production measurements and triggers re-calibration
   when the violation rate exceeds a bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..runtime.errors import ReproError

__all__ = ["CalibrationPoint", "QosTuner", "QosError"]


class QosError(ReproError):
    """Tuner misuse or unsatisfiable target."""


@dataclass(frozen=True)
class CalibrationPoint:
    """One probed configuration."""

    ratio: float
    quality_loss: float
    energy_j: float


@dataclass
class QosTuner:
    """Green-style calibrate/choose/monitor controller."""

    probe: Callable[[float], tuple[float, float]]
    target_quality_loss: float
    #: Ratios probed during calibration (coarse-to-fine grids work too).
    grid: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 1.0)
    #: Fraction of production runs allowed to violate the target before
    #: re-calibration is requested.
    violation_budget: float = 0.1
    points: list[CalibrationPoint] = field(default_factory=list)
    chosen: CalibrationPoint | None = None
    _production_runs: int = 0
    _violations: int = 0

    def __post_init__(self) -> None:
        if self.target_quality_loss < 0:
            raise QosError(
                f"target quality loss must be >= 0, got "
                f"{self.target_quality_loss}"
            )
        if not self.grid:
            raise QosError("calibration grid is empty")
        if any(not 0.0 <= r <= 1.0 for r in self.grid):
            raise QosError(f"grid ratios must be in [0, 1]: {self.grid}")

    # ------------------------------------------------------------------
    def calibrate(self) -> CalibrationPoint:
        """Probe the grid and choose the cheapest satisfying ratio.

        Raises :class:`QosError` when even ratio 1.0 misses the target
        (the probe's fully accurate run should have ~zero loss; if not,
        the target is unsatisfiable for this workload).
        """
        self.points = []
        for ratio in sorted(set(self.grid)):
            loss, energy = self.probe(ratio)
            if loss < 0 or energy < 0:
                raise QosError(
                    f"probe returned negative measurements at "
                    f"ratio={ratio}: loss={loss}, energy={energy}"
                )
            self.points.append(CalibrationPoint(ratio, loss, energy))

        feasible = [
            p
            for p in self.points
            if p.quality_loss <= self.target_quality_loss
        ]
        if not feasible:
            raise QosError(
                f"no calibrated ratio meets quality loss <= "
                f"{self.target_quality_loss}; best was "
                f"{min(p.quality_loss for p in self.points):.6g}"
            )
        self.chosen = min(feasible, key=lambda p: p.energy_j)
        self._production_runs = 0
        self._violations = 0
        return self.chosen

    # ------------------------------------------------------------------
    @property
    def ratio(self) -> float:
        """The ratio production runs should use."""
        if self.chosen is None:
            raise QosError("calibrate() has not been run")
        return self.chosen.ratio

    def observe(self, quality_loss: float) -> bool:
        """Record one production measurement.

        Returns ``True`` when re-calibration is warranted — the
        observed violation rate exceeded the budget (Green's
        re-calibration trigger).
        """
        if self.chosen is None:
            raise QosError("calibrate() has not been run")
        self._production_runs += 1
        if quality_loss > self.target_quality_loss:
            self._violations += 1
        if self._production_runs < 5:
            return False  # not enough evidence yet
        rate = self._violations / self._production_runs
        return rate > self.violation_budget

    @property
    def violation_rate(self) -> float:
        if self._production_runs == 0:
            return 0.0
        return self._violations / self._production_runs

    # ------------------------------------------------------------------
    def frontier(self) -> list[CalibrationPoint]:
        """The calibrated Pareto frontier (energy vs quality loss)."""
        pts = sorted(self.points, key=lambda p: p.energy_j)
        out: list[CalibrationPoint] = []
        best_loss = float("inf")
        for p in pts:
            if p.quality_loss < best_loss:
                out.append(p)
                best_loss = p.quality_loss
        return out
