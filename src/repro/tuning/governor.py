"""Online energy-budget governing: closing the paper's control loop.

The paper's headline scenario is a runtime that "selectively executes a
subset of the tasks approximately" to trade quality for energy — but the
evaluation turns the knob *offline*: every ratio point is a separate
run.  The :class:`EnergyBudgetGovernor` closes the loop online, the way
the intro says the ratio "can take different values in each invocation,
or be changed interactively": given a Joules budget (or a quality
floor), it observes per-interval energy/quality feedback from the shared
:class:`~repro.runtime.accounting.AccountingCore` and adjusts the
effective accurate-task ratio — and, optionally, the simulated DVFS
state — while the run executes.

The control law is a projection ("deadbeat") controller with online
model identification:

1. every tick, the accounting core emits an
   :class:`~repro.runtime.accounting.IntervalFeedback` (interval energy
   via cumulative differencing, retired tasks and busy time by kind);
2. the governor maintains per-kind nominal busy-seconds-per-task
   estimates (seeded from the analytic :class:`~repro.runtime.task
   .TaskCost` annotations when present, refined by measurement) and a
   multiplicative scale correction ``kappa`` absorbing whatever the
   per-frequency power model (:func:`~repro.energy.dvfs
   .predicted_energy`) mispredicts on this backend;
3. it solves ``spent + remaining * (r*e_acc + (1-r)*e_apx) = budget``
   for the ratio ``r`` and actuates
   :meth:`~repro.runtime.policies.base.Policy.set_ratio` (smoothed,
   clamped to the configured band);
4. with ``dvfs=True`` it first picks the
   :class:`~repro.energy.dvfs.FrequencyTable` step minimizing predicted
   energy for the remaining work (:func:`~repro.energy.dvfs
   .best_factor`) and actuates
   :meth:`~repro.runtime.policies.base.Policy.set_dvfs`, then spends
   the saved Joules on a higher accurate ratio.

Because tasks already executed are sunk cost, the controller is
self-correcting: any modelling error shows up in ``spent`` and the next
tick's ratio absorbs it.  Pair it with LQH (decisions at execution
time) or small-buffer GTB for tight tracking; GTB Max-Buffer stamps
every decision at the first barrier, leaving the governor nothing to
steer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..energy.dvfs import (
    DEFAULT_FREQUENCY_TABLE,
    FrequencyTable,
    best_factor,
    predicted_energy,
)
from ..registry import register
from ..runtime.errors import ReproError
from ..runtime.task import ExecutionKind

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.accounting import IntervalFeedback
    from ..runtime.scheduler import Scheduler

__all__ = ["EnergyBudgetGovernor", "GovernorError", "GovernorStep"]

#: Tasks sampled from the spawn log to seed the analytic cost priors.
_PRIOR_SAMPLE = 512

#: EWMA weight of a new busy-per-task observation (per interval).
_BUSY_ALPHA = 0.4


class GovernorError(ReproError):
    """Governor misconfiguration or wiring misuse."""


@dataclass(frozen=True)
class GovernorStep:
    """One control decision, for convergence analysis and plots."""

    index: int
    t: float
    spent_j: float
    projected_j: float
    ratio: float
    factor: float
    remaining_tasks: int


@register("governor", "governor", "budget", "energy-budget")
class EnergyBudgetGovernor:
    """Online controller steering a run toward an energy budget.

    Parameters
    ----------
    budget_j:
        Total energy target for the run (Joules on the engine's energy
        model).  ``None`` disables budget control — the governor then
        holds the ratio at ``ratio_floor`` (minimum energy subject to
        the quality floor) and, with ``dvfs=True``, still optimizes the
        frequency for the remaining work.
    interval:
        Feedback/actuation period in engine-timeline seconds (virtual
        seconds on the simulated engines, wall seconds on the threaded
        and process backends).  Choose well below the expected
        makespan; a run shorter than one interval is never steered.
    ratio_floor / ratio_ceiling:
        The band the controller may move the accurate ratio in.  The
        floor is the quality guarantee ("never approximate more than
        ``1 - floor`` of the tasks"); the ceiling caps how much budget
        headroom is converted back into accuracy.
    dvfs:
        Also actuate the simulated DVFS state (meaningful on the
        simulated engines, where frequency stretches durations; on
        wall-clock backends a switch only changes the billed power
        point, so it is off by default).
    freq_table:
        The discrete frequency steps to clamp to (default
        :data:`~repro.energy.dvfs.DEFAULT_FREQUENCY_TABLE`); also
        accepts a plain factor tuple.
    smoothing:
        Fraction of each tick's ratio correction applied (1.0 =
        deadbeat; lower damps measurement noise on wall-clock
        backends).
    deadband / settle_ticks:
        Convergence criterion: the run counts as converged once the
        ratio moves by at most ``deadband`` for ``settle_ticks``
        consecutive ticks.
    group:
        Control a single task group (default: every group, matching
        ``taskwait(ratio=...)`` semantics).
    """

    def __init__(
        self,
        budget_j: float | None = None,
        interval: float = 0.001,
        ratio_floor: float = 0.0,
        ratio_ceiling: float = 1.0,
        dvfs: bool = False,
        freq_table: FrequencyTable | tuple | None = None,
        smoothing: float = 0.7,
        deadband: float = 0.05,
        settle_ticks: int = 3,
        group: str | None = None,
    ) -> None:
        if budget_j is not None and budget_j <= 0:
            raise GovernorError(
                f"energy budget must be > 0 Joules, got {budget_j}"
            )
        if interval <= 0:
            raise GovernorError(
                f"governor interval must be > 0, got {interval}"
            )
        if not 0.0 <= ratio_floor <= ratio_ceiling <= 1.0:
            raise GovernorError(
                f"need 0 <= ratio_floor <= ratio_ceiling <= 1, got "
                f"floor={ratio_floor}, ceiling={ratio_ceiling}"
            )
        if not 0.0 < smoothing <= 1.0:
            raise GovernorError(
                f"smoothing must be in (0, 1], got {smoothing}"
            )
        if deadband < 0:
            raise GovernorError(f"deadband must be >= 0, got {deadband}")
        if settle_ticks < 1:
            raise GovernorError(
                f"settle_ticks must be >= 1, got {settle_ticks}"
            )
        self.budget_j = budget_j
        self.interval = interval
        self.ratio_floor = ratio_floor
        self.ratio_ceiling = ratio_ceiling
        self.dvfs = dvfs
        if freq_table is None:
            self.freq_table = DEFAULT_FREQUENCY_TABLE
        elif isinstance(freq_table, FrequencyTable):
            self.freq_table = freq_table
        else:
            self.freq_table = FrequencyTable(tuple(freq_table))
        self.smoothing = smoothing
        self.deadband = deadband
        self.settle_ticks = settle_ticks
        self.group = group

        self._scheduler: "Scheduler | None" = None
        #: Control history, one entry per tick (read by tests/benches).
        self.history: list[GovernorStep] = []
        self._ratio = ratio_ceiling  # start accurate; steer downward
        self._factor = 1.0
        self._stable_streak = 0
        self._converged_at: int | None = None
        # Online model state: nominal busy-seconds per task by basket
        # (accurate vs approximate-or-dropped).  No power-model scale
        # correction is kept: energy attribution integrates the same
        # machine model the predictor uses, so the model is exact up to
        # occupancy effects — and those are absorbed tick-by-tick by
        # re-solving against the *measured* sunk cost.
        self._busy_per_task = {"acc": None, "apx": None}
        self._primed = False
        # Telemetry handles; None until obs_bind wires a registry.
        self._obs_ticks = None
        self._obs_ratio = None
        self._obs_factor = None

    # -- wiring ----------------------------------------------------------
    def bind(self, scheduler: "Scheduler") -> None:
        """Attach to a scheduler and install the periodic tick.

        Called by ``Scheduler.__init__`` when the config names a
        governor; binding twice (one governor instance per run) is a
        misuse the registry/spec path never produces.
        """
        if self._scheduler is not None:
            raise GovernorError(
                "governor is already bound to a scheduler; governors "
                "are one-run objects — build a fresh one per run"
            )
        self._scheduler = scheduler
        scheduler.engine.set_tick(self.interval, self.on_tick)

    @property
    def scheduler(self) -> "Scheduler":
        if self._scheduler is None:
            raise GovernorError("governor is not bound to a scheduler")
        return self._scheduler

    def obs_bind(self, registry, scope: str) -> None:
        """Wire control-loop telemetry into a metrics registry.

        ``scope`` is the label the series carry — the tenant name for
        per-tenant serve governors, ``"_run"`` for a run-level one.
        Safe to skip entirely (handles stay ``None`` and
        :meth:`control_step` pays one attribute test).
        """
        self._obs_ticks = registry.counter(
            "repro_governor_ticks_total",
            "Control-law steps taken.",
            labels=("scope",),
        ).labels(scope)
        self._obs_ratio = registry.gauge(
            "repro_governor_ratio",
            "Accurate ratio currently requested.",
            labels=("scope",),
        ).labels(scope)
        self._obs_factor = registry.gauge(
            "repro_governor_dvfs_factor",
            "DVFS factor currently requested (1.0 = nominal).",
            labels=("scope",),
        ).labels(scope)

    # -- introspection ---------------------------------------------------
    @property
    def ratio(self) -> float:
        """The accurate ratio currently requested."""
        return self._ratio

    @property
    def factor(self) -> float:
        """The DVFS factor currently requested (1.0 = nominal)."""
        return self._factor

    @property
    def ticks(self) -> int:
        return len(self.history)

    @property
    def converged(self) -> bool:
        return self._converged_at is not None

    @property
    def steps_to_converge(self) -> int | None:
        """Ticks until the ratio entered its stable band (None: never)."""
        return self._converged_at

    def summary(self) -> dict:
        """Flat control-outcome dict for reports and bench probes."""
        last = self.history[-1] if self.history else None
        return {
            "budget_j": self.budget_j,
            "ticks": self.ticks,
            "converged": self.converged,
            "steps_to_converge": self.steps_to_converge,
            "final_ratio": self._ratio,
            "final_factor": self._factor,
            "spent_j_at_last_tick": last.spent_j if last else 0.0,
            "projected_j": last.projected_j if last else 0.0,
        }

    # -- retargeting ------------------------------------------------------
    def retarget(self, budget_j: float) -> None:
        """Move the budget target of a running controller.

        The serving cluster leases tenant Joule quota to shards in
        chunks (:mod:`repro.cluster.ledger`); each refill raises the
        quota this shard's controller should steer toward.  Sunk cost
        and the identified energy model carry over untouched — the next
        :meth:`control_step` simply re-solves against the new target,
        which is exactly the deadbeat law's self-correction path.  The
        convergence latch resets: a retargeted run must settle again.
        """
        if budget_j <= 0:
            raise GovernorError(
                f"retarget budget must be > 0 Joules, got {budget_j}"
            )
        if budget_j != self.budget_j:
            self.budget_j = budget_j
            self._stable_streak = 0
            self._converged_at = None

    # -- model identification --------------------------------------------
    def _prime_from_costs(self) -> None:
        """Seed busy-per-task estimates from analytic task costs."""
        self._primed = True
        machine = self.scheduler.machine_model
        inv_ops = 1.0 / machine.ops_per_second
        acc: list[float] = []
        apx: list[float] = []
        for task in self.scheduler.tasks[:_PRIOR_SAMPLE]:
            cost = task.cost
            if cost is None:
                continue
            acc.append(cost.accurate * inv_ops)
            # Droppable tasks skip their body entirely when approximated.
            apx.append(
                0.0 if task.droppable else cost.approximate * inv_ops
            )
        if acc:
            self._busy_per_task["acc"] = sum(acc) / len(acc)
        if apx:
            self._busy_per_task["apx"] = sum(apx) / len(apx)

    def _observe(self, fb: "IntervalFeedback", factor: float) -> None:
        """Fold one interval's measurements into the model."""
        engine = self.scheduler.engine
        # On time-scaling (simulated) backends a busy interval recorded
        # under factor f is f× shorter than nominal; undo the stretch
        # so the model always reasons in nominal busy seconds.
        descale = (
            factor
            if getattr(engine, "dvfs_scales_time", False)
            else 1.0
        )
        buckets: dict[str, tuple[float, int]] = {}
        for kind, count in fb.tasks_by_kind.items():
            key = "acc" if kind is ExecutionKind.ACCURATE else "apx"
            busy = fb.busy_by_kind.get(kind, 0.0) * descale
            b, n = buckets.get(key, (0.0, 0))
            buckets[key] = (b + busy, n + count)
        for key, (busy, count) in buckets.items():
            if count == 0:
                continue
            observed = busy / count
            prior = self._busy_per_task[key]
            self._busy_per_task[key] = (
                observed
                if prior is None
                else prior + _BUSY_ALPHA * (observed - prior)
            )

    def _energy_per_task(self, key: str, factor: float) -> float:
        """Modelled Joules to retire one task of a basket at ``factor``."""
        b = self._busy_per_task[key]
        if b is None:
            # Never observed and no prior: assume the other basket's
            # cost (conservative for "apx", optimistic for "acc").
            other = self._busy_per_task["apx" if key == "acc" else "acc"]
            b = other if other is not None else 0.0
        machine = self.scheduler.machine_model
        width = self.scheduler.engine.n_workers
        return predicted_energy(machine, factor, b, width)

    # -- the control law --------------------------------------------------
    def on_tick(self, now: float) -> None:
        """One control step; installed as the engine's periodic tick."""
        scheduler = self.scheduler
        if not self._primed:
            self._prime_from_costs()
        factor_in_force = self._factor
        fb = scheduler.engine.accounting.interval_feedback(
            scheduler.machine_model, now
        )
        self._observe(fb, factor_in_force)

        remaining = scheduler.outstanding_tasks
        spent = fb.cumulative_j

        # Frequency first: pick the table step minimizing predicted
        # energy for the remaining work, then spend any headroom on
        # accuracy via the ratio solve below.
        factor = self._factor
        if self.dvfs and remaining > 0:
            b_acc = self._busy_per_task["acc"] or 0.0
            b_apx = self._busy_per_task["apx"] or 0.0
            work = remaining * (
                self._ratio * b_acc + (1.0 - self._ratio) * b_apx
            )
            # best_factor scans the table, so the result is a legal
            # step by construction — no clamp needed.
            factor = best_factor(
                scheduler.machine_model,
                work,
                scheduler.engine.n_workers,
                self.freq_table,
            )
            if factor != self._factor:
                scheduler.policy.set_dvfs(factor, at=now)
                self._factor = factor

        self.control_step(
            now,
            spent_j=spent,
            remaining_tasks=remaining,
            e_acc_j=self._energy_per_task("acc", factor),
            e_apx_j=self._energy_per_task("apx", factor),
        )
        scheduler.policy.set_ratio(self._ratio, group=self.group)

    def control_step(
        self,
        now: float,
        *,
        spent_j: float,
        remaining_tasks: int,
        e_acc_j: float,
        e_apx_j: float,
    ) -> float:
        """One budget-projection step on externally supplied measurements.

        The actuator-free core of the control law: solve for the ratio
        that lands on the budget given the sunk cost and the modelled
        per-task energies, smooth it, update the convergence latch and
        the history, and return the new ratio.  :meth:`on_tick` wraps it
        with the engine feedback channel and the ``set_ratio``/DVFS
        actuation; the serving layer (:mod:`repro.serve`) calls it
        directly with per-tenant measurements — one unbound governor per
        tenant steering that tenant's admission ratio.
        """
        ratio = self._solve_ratio(
            spent_j, remaining_tasks, e_acc_j, e_apx_j
        )
        previous = self._ratio
        self._ratio = previous + self.smoothing * (ratio - previous)
        # Convergence latches: once the ratio has held still for
        # settle_ticks, the controller counts as converged for the run.
        # Endgame jitter (a handful of remaining tasks makes the solve
        # coarsely discrete) must not un-converge a settled run.
        if abs(self._ratio - previous) <= self.deadband:
            self._stable_streak += 1
            if (
                self._converged_at is None
                and self._stable_streak >= self.settle_ticks
            ):
                # The tick (1-based) at which the stable streak began.
                self._converged_at = (
                    len(self.history) + 2 - self.settle_ticks
                )
        else:
            self._stable_streak = 0

        projected = spent_j + remaining_tasks * (
            self._ratio * e_acc_j + (1.0 - self._ratio) * e_apx_j
        )
        self.history.append(
            GovernorStep(
                index=len(self.history),
                t=now,
                spent_j=spent_j,
                projected_j=projected,
                ratio=self._ratio,
                factor=self._factor,
                remaining_tasks=remaining_tasks,
            )
        )
        if self._obs_ticks is not None:
            self._obs_ticks.inc()
            self._obs_ratio.set(self._ratio)
            self._obs_factor.set(self._factor)
        return self._ratio

    def _solve_ratio(
        self, spent: float, remaining: int, e_acc: float, e_apx: float
    ) -> float:
        """The deadbeat projection: the ratio landing on the budget."""
        if self.budget_j is None:
            # Quality-floor mode: cheapest ratio the floor allows.
            return self.ratio_floor
        if remaining <= 0:
            return self._ratio  # nothing left to steer
        headroom_per_task = (self.budget_j - spent) / remaining
        if e_acc <= e_apx + 1e-300:
            # Degenerate model (approximation saves nothing): run
            # accurate when the budget allows, floor otherwise.
            full = (
                self.ratio_ceiling
                if headroom_per_task >= e_acc
                else self.ratio_floor
            )
            return full
        r = (headroom_per_task - e_apx) / (e_acc - e_apx)
        return min(self.ratio_ceiling, max(self.ratio_floor, r))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        target = (
            f"budget={self.budget_j:.4g}J"
            if self.budget_j is not None
            else f"floor={self.ratio_floor}"
        )
        return (
            f"<EnergyBudgetGovernor {target} interval={self.interval} "
            f"dvfs={self.dvfs}>"
        )
