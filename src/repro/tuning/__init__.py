"""Auto-tuning and online control of the approximation knobs.

Two controllers close the quality/energy loop the paper leaves open:

* :class:`~repro.tuning.qos.QosTuner` — Green-style *offline*
  calibrate/choose/monitor: probe a ratio grid, pick the cheapest
  configuration meeting the quality target, re-calibrate on violation.
* :class:`~repro.tuning.governor.EnergyBudgetGovernor` — *online*
  budget control: observe per-interval energy feedback from the
  accounting core mid-run and steer the effective accurate-task ratio
  (plus, optionally, the simulated DVFS state) toward a Joules budget.
"""

from .governor import EnergyBudgetGovernor, GovernorError, GovernorStep
from .qos import CalibrationPoint, QosError, QosTuner

__all__ = [
    "QosTuner",
    "QosError",
    "CalibrationPoint",
    "EnergyBudgetGovernor",
    "GovernorError",
    "GovernorStep",
]
