"""QoS auto-tuning of the ratio knob (Green-style calibration)."""

from .qos import CalibrationPoint, QosError, QosTuner

__all__ = ["QosTuner", "QosError", "CalibrationPoint"]
