"""``TraceFrame``: a tiny columnar frame over serve traces.

The scenario conformance harness (:mod:`repro.serve.scenarios`) wants
the pandas idiom — build a frame of job reports, filter, group, and
aggregate into figures — without requiring pandas: the toolchain here
is numpy-only.  :class:`TraceFrame` is the minimal columnar core of
that idiom, pure Python, with :meth:`to_pandas` as an optional bridge
for notebooks that do have pandas installed.

Rows are plain dicts; columns are aligned lists.  Missing keys
materialize as ``None``, so frames built from heterogeneous report
dicts (batch jobs carry no ``frame``, stream frames no
``round_quality``) stay rectangular.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator

from ..runtime.errors import ConfigError

__all__ = ["TraceFrame"]


class TraceFrame:
    """An immutable-ish columnar frame (dict of equal-length lists)."""

    def __init__(self, columns: dict[str, list] | None = None) -> None:
        columns = dict(columns or {})
        lengths = {name: len(vals) for name, vals in columns.items()}
        if len(set(lengths.values())) > 1:
            raise ConfigError(
                f"TraceFrame columns must align, got lengths {lengths}"
            )
        self._columns: dict[str, list] = columns

    # -- constructors ----------------------------------------------------
    @classmethod
    def from_records(cls, records: Iterable[dict]) -> "TraceFrame":
        """Build from row dicts; the column set is the key union, rows
        missing a key hold ``None``."""
        rows = list(records)
        names: list[str] = []
        seen: set[str] = set()
        for row in rows:
            for key in row:
                if key not in seen:
                    seen.add(key)
                    names.append(key)
        return cls(
            {name: [row.get(name) for row in rows] for name in names}
        )

    @classmethod
    def from_reports(cls, reports: Iterable[Any]) -> "TraceFrame":
        """Build from serve :class:`~repro.serve.server.JobReport`
        objects (or anything exposing ``to_dict``)."""
        return cls.from_records(
            r.to_dict() if hasattr(r, "to_dict") else dict(r)
            for r in reports
        )

    # -- shape -----------------------------------------------------------
    @property
    def columns(self) -> list[str]:
        return list(self._columns)

    def __len__(self) -> int:
        if not self._columns:
            return 0
        return len(next(iter(self._columns.values())))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<TraceFrame {len(self)} rows x "
            f"{len(self._columns)} cols>"
        )

    # -- access ----------------------------------------------------------
    def col(self, name: str) -> list:
        if name not in self._columns:
            raise ConfigError(
                f"no column {name!r} (have {self.columns})"
            )
        return list(self._columns[name])

    def rows(self) -> Iterator[dict]:
        names = self.columns
        for i in range(len(self)):
            yield {name: self._columns[name][i] for name in names}

    def select(self, *names: str) -> "TraceFrame":
        return TraceFrame({name: self.col(name) for name in names})

    # -- transforms ------------------------------------------------------
    def filter(self, pred: Callable[[dict], bool]) -> "TraceFrame":
        return TraceFrame.from_records(
            row for row in self.rows() if pred(row)
        )

    def groupby(self, key: str) -> dict[Any, "TraceFrame"]:
        groups: dict[Any, list[dict]] = {}
        for row in self.rows():
            groups.setdefault(row.get(key), []).append(row)
        return {
            value: TraceFrame.from_records(rows)
            for value, rows in groups.items()
        }

    def with_column(
        self, name: str, fn: Callable[[dict], Any]
    ) -> "TraceFrame":
        columns = {n: self.col(n) for n in self.columns}
        columns[name] = [fn(row) for row in self.rows()]
        return TraceFrame(columns)

    # -- aggregation -----------------------------------------------------
    def _numeric(self, name: str) -> list[float]:
        return [
            float(v)
            for v in self.col(name)
            if v is not None and not isinstance(v, bool)
        ]

    def mean(self, name: str) -> float:
        vals = self._numeric(name)
        return sum(vals) / len(vals) if vals else 0.0

    def sum(self, name: str) -> float:
        return sum(self._numeric(name))

    def min(self, name: str) -> float:
        vals = self._numeric(name)
        return min(vals) if vals else 0.0

    def max(self, name: str) -> float:
        vals = self._numeric(name)
        return max(vals) if vals else 0.0

    def percentile(self, name: str, q: float) -> float:
        from ..serve.figure import percentile

        return percentile(self._numeric(name), q)

    def value_counts(self, name: str) -> dict[Any, int]:
        counts: dict[Any, int] = {}
        for v in self.col(name):
            counts[v] = counts.get(v, 0) + 1
        return counts

    # -- bridges ---------------------------------------------------------
    def to_records(self) -> list[dict]:
        return list(self.rows())

    def to_pandas(self):
        """The optional pandas bridge (raises a clear error without
        pandas installed — the harness itself never needs it)."""
        try:
            import pandas  # noqa: PLC0415
        except ImportError as exc:  # pragma: no cover - env-dependent
            raise ConfigError(
                "to_pandas() needs pandas, which is not installed; "
                "TraceFrame itself is pandas-free"
            ) from exc
        return pandas.DataFrame(self._columns)

    def render(self, max_rows: int = 12) -> str:
        """A small fixed-width table of the first ``max_rows`` rows."""
        names = self.columns
        if not names:
            return "(empty frame)"

        def fmt(v: Any) -> str:
            if isinstance(v, float):
                return f"{v:.4g}"
            if isinstance(v, list):
                return f"[{len(v)} values]"
            return str(v)

        head = [list(map(fmt, (row[n] for n in names)))
                for row in list(self.rows())[:max_rows]]
        widths = [
            max(len(n), *(len(r[i]) for r in head)) if head else len(n)
            for i, n in enumerate(names)
        ]
        lines = [
            "  ".join(n.ljust(w) for n, w in zip(names, widths)),
            "  ".join("-" * w for w in widths),
        ]
        lines += [
            "  ".join(c.ljust(w) for c, w in zip(r, widths))
            for r in head
        ]
        if len(self) > max_rows:
            lines.append(f"... ({len(self) - max_rows} more rows)")
        return "\n".join(lines)
