"""Regeneration of the paper's tables (Table 1 and Table 2)."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..kernels.base import Degree, benchmark_names, get_benchmark
from .experiment import ExperimentCell, run_cell
from .figures import POLICY_MODES, POLICY_NAMES
from .report import format_table

__all__ = ["table1", "Table2Data", "table2_policy_accuracy"]


def table1() -> str:
    """Table 1: the benchmark/approximation-degree configuration.

    Static by construction — it documents the knobs the other
    experiments sweep; regenerating it verifies the registered
    benchmarks carry the paper's configuration.
    """
    rows = []
    for name in benchmark_names():
        b = get_benchmark(name, small=True)
        fmt = (
            (lambda v: f"{v:g}")
            if name.lower() == "jacobi"
            else (lambda v: f"{100 * v:g}%")
        )
        rows.append(
            [
                b.name,
                b.approx_mode,
                fmt(b.degree_param(Degree.MILD)),
                fmt(b.degree_param(Degree.MEDIUM)),
                fmt(b.degree_param(Degree.AGGRESSIVE)),
                b.quality_metric,
            ]
        )
    return format_table(
        ["Benchmark", "Approx/Drop", "Mild", "Med", "Aggr", "Quality"],
        rows,
        title=(
            "Table 1: benchmarks (degree = % accurate tasks; Jacobi: "
            "convergence tolerance, native 1e-5)"
        ),
    )


@dataclass
class Table2Data:
    """Policy accuracy: significance inversions and ratio offsets.

    ``inversions[(benchmark, mode)]`` is the percentage of tasks whose
    execution inverted the significance order; ``ratio_diff`` the mean
    |requested - achieved| accurate-ratio offset — the two halves of the
    paper's Table 2.
    """

    benchmarks: list[str] = field(default_factory=list)
    inversions: dict[tuple[str, str], float] = field(default_factory=dict)
    ratio_diff: dict[tuple[str, str], float] = field(default_factory=dict)

    #: Paper column order: LQH, GTB(user-defined buffer), GTB(max buffer).
    MODES = ("policy:lqh", "policy:gtb", "policy:gtb-max")

    def render(self) -> str:
        headers = ["Benchmark"]
        headers += [f"inv% {POLICY_NAMES[m]}" for m in self.MODES]
        headers += [f"ratio-diff {POLICY_NAMES[m]}" for m in self.MODES]
        rows = []
        for b in self.benchmarks:
            rows.append(
                [b]
                + [self.inversions[(b, m)] for m in self.MODES]
                + [self.ratio_diff[(b, m)] for m in self.MODES]
            )
        return format_table(
            headers,
            rows,
            title=(
                "Table 2: degree of accuracy of the proposed policies "
                "(Medium degree)"
            ),
        )


def table2_policy_accuracy(
    benchmarks: tuple[str, ...] | None = None,
    small: bool = False,
    n_workers: int = 16,
    seed: int = 2015,
) -> Table2Data:
    """Run the Medium-degree grid and collect policy-accuracy metrics."""
    names = list(benchmarks) if benchmarks else benchmark_names()
    data = Table2Data(benchmarks=names)
    for b in names:
        for mode in Table2Data.MODES:
            res = run_cell(
                ExperimentCell(
                    b, mode, Degree.MEDIUM, n_workers, small, seed
                )
            )
            data.inversions[(b, mode)] = res.report.total_inversion_pct()
            data.ratio_diff[(b, mode)] = res.report.mean_ratio_offset()
    return data
