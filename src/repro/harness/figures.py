"""Regeneration of every figure in the paper's evaluation (Figs 1-4).

Each ``figN_*`` function runs the necessary experiment cells and returns
a small result object carrying both the raw numbers (for tests and
EXPERIMENTS.md) and a ``render()`` method producing the ASCII view.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..kernels.base import Degree, get_benchmark
from ..kernels.sobel import sobel_reference
from ..perforation import perforated_indices
from ..quality.images import (
    quadrant_mosaic,
    quadrant_psnr,
    synthetic_image,
    write_pgm,
)
from ..runtime.scheduler import Scheduler
from .experiment import CellResult, ExperimentCell, run_cell
from .report import bar_chart, format_table

__all__ = [
    "POLICY_MODES",
    "POLICY_NAMES",
    "Fig2Data",
    "fig2_benchmark",
    "Fig4Data",
    "fig4_overhead",
    "QuadrantFigure",
    "fig1_sobel_approximation",
    "fig3_sobel_perforation",
    "EnergyBudgetData",
    "GOVERNOR_ENGINES",
    "fig_energy_budget",
]

#: The three policy configurations of Figure 2, in paper order.
POLICY_MODES = ("policy:gtb", "policy:gtb-max", "policy:lqh")
POLICY_NAMES = {
    "policy:gtb": "GTB",
    "policy:gtb-max": "GTB(MaxBuffer)",
    "policy:lqh": "LQH",
    "accurate": "accurate",
    "perforated": "perforation",
}

_DEGREES = (Degree.AGGRESSIVE, Degree.MEDIUM, Degree.MILD)


@dataclass
class Fig2Data:
    """One benchmark's panel of Figure 2.

    ``cells[(degree, mode)]`` holds the measured
    :class:`~repro.harness.experiment.CellResult`; ``accurate`` is the
    reference line; ``perforated[degree]`` the perforation line (may be
    empty when inapplicable).
    """

    benchmark: str
    cells: dict[tuple[Degree, str], CellResult] = field(default_factory=dict)
    accurate: CellResult | None = None
    perforated: dict[Degree, CellResult] = field(default_factory=dict)

    def metric(self, which: str, degree: Degree, mode: str) -> float:
        cell = self.cells[(degree, mode)]
        return {
            "time": cell.makespan_s,
            "energy": cell.energy_j,
            "quality": cell.quality.value,
        }[which]

    def render(self) -> str:
        assert self.accurate is not None
        qmetric = next(iter(self.cells.values())).quality.metric
        sections = []
        for which, unit in (
            ("time", "s"),
            ("energy", "J"),
            ("quality", qmetric),
        ):
            headers = ["degree"] + [POLICY_NAMES[m] for m in POLICY_MODES]
            headers += ["perforation"] if self.perforated else []
            rows = []
            for degree in _DEGREES:
                row: list[object] = [degree.value]
                row += [
                    self.metric(which, degree, mode)
                    for mode in POLICY_MODES
                ]
                if self.perforated:
                    perf = self.perforated.get(degree)
                    row.append(
                        ""
                        if perf is None
                        else {
                            "time": perf.makespan_s,
                            "energy": perf.energy_j,
                            "quality": perf.quality.value,
                        }[which]
                    )
                rows.append(row)
            acc_val = {
                "time": self.accurate.makespan_s,
                "energy": self.accurate.energy_j,
                "quality": 0.0,
            }[which]
            sections.append(
                format_table(
                    headers,
                    rows,
                    title=(
                        f"[{self.benchmark}] {which} ({unit}) — "
                        f"accurate reference: {acc_val:.6g}"
                    ),
                )
            )
        return "\n\n".join(sections)


def fig2_benchmark(
    name: str,
    small: bool = False,
    n_workers: int = 16,
    seed: int = 2015,
) -> Fig2Data:
    """Run the full Figure 2 panel for one benchmark."""
    data = Fig2Data(benchmark=name)
    data.accurate = run_cell(
        ExperimentCell(name, "accurate", None, n_workers, small, seed)
    )
    bench = get_benchmark(name, small=small)
    for degree in _DEGREES:
        for mode in POLICY_MODES:
            data.cells[(degree, mode)] = run_cell(
                ExperimentCell(name, mode, degree, n_workers, small, seed)
            )
        if bench.perforation_applicable:
            data.perforated[degree] = run_cell(
                ExperimentCell(
                    name, "perforated", degree, n_workers, small, seed
                )
            )
    return data


# ----------------------------------------------------------------------
@dataclass
class Fig4Data:
    """Normalized policy overhead (Figure 4).

    ``normalized[(benchmark, mode)]`` = makespan under the policy with
    every task accurate (ratio 1.0 equivalents), divided by the
    makespan on the significance-agnostic runtime.
    """

    normalized: dict[tuple[str, str], float] = field(default_factory=dict)
    benchmarks: list[str] = field(default_factory=list)

    def render(self) -> str:
        headers = ["benchmark"] + [POLICY_NAMES[m] for m in POLICY_MODES]
        rows = []
        for b in self.benchmarks:
            rows.append(
                [b] + [self.normalized[(b, m)] for m in POLICY_MODES]
            )
        return format_table(
            headers,
            rows,
            title=(
                "Figure 4: execution time with all tasks accurate, "
                "normalized to the significance-agnostic runtime"
            ),
        )


def fig4_overhead(
    benchmarks: tuple[str, ...] = (
        "Sobel",
        "DCT",
        "MC",
        "Kmeans",
        "Jacobi",
        "Fluidanimate",
    ),
    small: bool = False,
    n_workers: int = 16,
    seed: int = 2015,
) -> Fig4Data:
    """Measure the overhead of the significance-aware code paths.

    Paper section 4.2: the baseline "does not include the execution
    paths for classifying and executing tasks according to
    significance"; the policy runs execute 100% of tasks accurately so
    any makespan difference is pure runtime overhead.
    """
    data = Fig4Data(benchmarks=list(benchmarks))
    for b in benchmarks:
        base = run_cell(
            ExperimentCell(b, "accurate", None, n_workers, small, seed)
        )
        for mode in POLICY_MODES:
            # Degree is irrelevant: NATIVE ratio equivalents are forced
            # by running the benchmark with its native parameter.
            cell = ExperimentCell(b, mode, None, n_workers, small, seed)
            bench_cell = _run_native(cell)
            data.normalized[(b, mode)] = (
                bench_cell.makespan_s / base.makespan_s
            )
    return data


def _run_native(cell: ExperimentCell) -> CellResult:
    """Run a policy cell at the benchmark's native (all-accurate) knob."""
    from .experiment import reference_output

    bench = get_benchmark(cell.benchmark, small=cell.small)
    inputs = bench.build_input(cell.seed)
    reference = reference_output(bench, cell.seed)
    rt = Scheduler(cell.runtime_config())
    output = bench.run_overhead_probe(rt, inputs)
    report = rt.finish()
    return CellResult(
        cell=cell,
        makespan_s=report.makespan_s,
        energy_j=report.energy_j,
        quality=bench.quality(reference, output),
        report=report,
    )


# ----------------------------------------------------------------------
@dataclass
class QuadrantFigure:
    """Figures 1 and 3: a 4-quadrant Sobel mosaic plus per-quadrant PSNR."""

    title: str
    labels: list[str]
    mosaic: np.ndarray = field(repr=False)
    psnr_db: list[float] = field(default_factory=list)
    written: Path | None = None

    def render(self) -> str:
        vals = [
            0.0 if p == float("inf") else 1.0 / p for p in self.psnr_db
        ]
        chart = bar_chart(
            [
                f"{lbl} (PSNR={p:.1f}dB)" if p != float("inf")
                else f"{lbl} (PSNR=inf)"
                for lbl, p in zip(self.labels, self.psnr_db)
            ],
            vals,
        )
        out = f"{self.title}\nper-quadrant PSNR^-1 (lower is better):\n{chart}"
        if self.written:
            out += f"\nmosaic written to {self.written}"
        return out


# ----------------------------------------------------------------------
#: The execution backends the energy-budget figure sweeps: both
#: virtual-time engines plus both wall-clock engines, demonstrating the
#: governor closes its loop on every backend (wall-clock energies are
#: model estimates over measured busy intervals and therefore noisy).
GOVERNOR_ENGINES = ("simulated", "sequential", "threaded", "process")


@dataclass
class EnergyBudgetData:
    """The governor's energy-vs-quality frontier (paper's open loop,
    closed).

    ``cells[(engine, frac)]`` holds one governed run at budget
    ``frac × accurate-energy-on-that-engine``; ``accurate[engine]`` is
    the full-precision reference; ``drop_frontier[param]`` the
    significance-agnostic drop (perforation) baseline measured on the
    simulated engine.
    """

    benchmark: str
    budget_fracs: tuple[float, ...]
    engines: tuple[str, ...]
    accurate: dict[str, dict] = field(default_factory=dict)
    cells: dict[tuple[str, float], dict] = field(default_factory=dict)
    drop_frontier: dict[float, dict] = field(default_factory=dict)

    def render(self) -> str:
        sections = []
        for engine in self.engines:
            ref = self.accurate[engine]
            headers = [
                "budget frac", "budget (J)", "energy (J)", "err %",
                "quality", "final ratio", "converged",
            ]
            rows = []
            for frac in self.budget_fracs:
                cell = self.cells[(engine, frac)]
                rows.append(
                    [
                        frac,
                        cell["budget_j"],
                        cell["energy_j"],
                        cell["error_pct"],
                        cell["quality"],
                        cell["final_ratio"],
                        "yes" if cell["converged"] else "NO",
                    ]
                )
            sections.append(
                format_table(
                    headers,
                    rows,
                    title=(
                        f"[{self.benchmark}] governed energy/quality on "
                        f"'{engine}' — accurate: "
                        f"{ref['energy_j']:.6g} J"
                    ),
                )
            )
        if self.drop_frontier:
            rows = [
                [param, cell["energy_j"], cell["quality"]]
                for param, cell in sorted(self.drop_frontier.items())
            ]
            sections.append(
                format_table(
                    ["keep fraction", "energy (J)", "quality"],
                    rows,
                    title=(
                        "significance-agnostic drop baseline "
                        "(perforation, simulated)"
                    ),
                )
            )
        return "\n\n".join(sections)


def fig_energy_budget(
    small: bool = False,
    n_workers: int = 16,
    seed: int = 2015,
    budget_fracs: tuple[float, ...] = (0.5, 0.7, 0.85),
    engines: tuple[str, ...] = GOVERNOR_ENGINES,
    drop_params: tuple[float, ...] = (0.3, 0.5, 0.7, 0.9),
    governor_ticks: int = 40,
) -> EnergyBudgetData:
    """The energy-vs-quality frontier with the governor in the loop.

    For each backend: measure the full-precision energy, then hand the
    governor a budget at each fraction of it and let it steer LQH's
    ratio online.  The perforation rows reproduce the
    significance-agnostic alternative — dropping work blindly — so the
    figure shows what significance-awareness buys at equal energy.

    Read the wall-clock rows (threaded/process) as "the loop closes on
    this backend", not as tight tracking: their energies are model
    estimates over noisy measured intervals, and small-mode task bodies
    are microseconds long — often retired before the first wall-clock
    tick can steer them.  The virtual-time rows are deterministic.
    """
    bench = get_benchmark("Sobel", small=small)
    if small:
        # 64² leaves LQH's per-worker histograms too cold to track a
        # ratio (62 tasks over 16 workers); 128² keeps the small mode
        # fast while giving the controller something to steer.
        bench.height = bench.width = 128
    inputs = bench.build_input(seed)
    # Not the shared reference_output cache: the small-mode resize above
    # would poison its (name, small, seed) key for other figures.
    reference = bench.run_reference(inputs)
    data = EnergyBudgetData(
        benchmark=bench.name,
        budget_fracs=tuple(budget_fracs),
        engines=tuple(engines),
    )

    for engine in engines:
        accurate = Scheduler(
            policy="accurate", n_workers=n_workers, engine=engine
        )
        out = bench.run_tasks(accurate, inputs, 1.0)
        full = accurate.finish()
        data.accurate[engine] = {
            "energy_j": full.energy_j,
            "makespan_s": full.makespan_s,
            "quality": bench.quality(reference, out).value,
        }
        interval = full.makespan_s / governor_ticks
        for frac in budget_fracs:
            budget_j = frac * full.energy_j
            governed = Scheduler(
                policy="lqh",
                n_workers=n_workers,
                engine=engine,
                governor=(
                    f"governor:budget_j={budget_j},interval={interval}"
                ),
            )
            out = bench.run_tasks(governed, inputs, 1.0)
            report = governed.finish()
            quality = bench.quality(reference, out)
            data.cells[(engine, frac)] = {
                "budget_j": budget_j,
                "energy_j": report.energy_j,
                "error_pct": (
                    100.0 * abs(report.energy_j - budget_j) / budget_j
                ),
                "quality": quality.value,
                "final_ratio": governed.governor.ratio,
                "converged": governed.governor.converged,
                "steps_to_converge": governed.governor.steps_to_converge,
            }

    for param in drop_params:
        dropped = Scheduler(policy="accurate", n_workers=n_workers)
        out = bench.run_perforated(dropped, inputs, param)
        report = dropped.finish()
        data.drop_frontier[param] = {
            "energy_j": report.energy_j,
            "quality": bench.quality(reference, out).value,
        }
    return data


def _sobel_with_ratio(
    img: np.ndarray, ratio: float, n_workers: int
) -> np.ndarray:
    bench = get_benchmark("Sobel", small=img.shape[0] < 256)
    bench.height, bench.width = img.shape
    rt = Scheduler(policy="gtb-max", n_workers=n_workers)
    return bench.run_tasks(rt, img, ratio)


def fig1_sobel_approximation(
    small: bool = False,
    n_workers: int = 16,
    out_path: str | Path | None = None,
    seed: int = 2015,
) -> QuadrantFigure:
    """Figure 1: Sobel under no/Mild/Medium/Aggressive approximation.

    Quadrants: upper-left accurate, upper-right Mild (80%), lower-left
    Medium (30%), lower-right Aggressive (0%).
    """
    size = 64 if small else 512
    img = synthetic_image(size, size, seed)
    reference = sobel_reference(img)
    outputs = [reference]
    for ratio in (0.80, 0.30, 0.0):
        outputs.append(_sobel_with_ratio(img, ratio, n_workers))
    mosaic = quadrant_mosaic(outputs)
    fig = QuadrantFigure(
        title=(
            "Figure 1: Sobel approximation levels "
            "(quadrants: accurate / Mild 80% / Medium 30% / Aggr 0%)"
        ),
        labels=["accurate", "Mild", "Medium", "Aggressive"],
        mosaic=mosaic,
        psnr_db=quadrant_psnr(reference, mosaic),
    )
    if out_path is not None:
        fig.written = write_pgm(out_path, mosaic)
    return fig


def fig3_sobel_perforation(
    small: bool = False,
    n_workers: int = 16,
    out_path: str | Path | None = None,
    seed: int = 2015,
) -> QuadrantFigure:
    """Figure 3: Sobel under loop perforation of 0/20/70/100 % of rows.

    Perforated rows keep the zero initialization — the black banding
    that makes perforated Sobel visually unacceptable even at 20%.
    """
    size = 64 if small else 512
    img = synthetic_image(size, size, seed)
    reference = sobel_reference(img)
    outputs = [reference]
    rows = img.shape[0] - 2
    for drop in (0.20, 0.70, 1.00):
        res = np.zeros_like(img)
        for r in perforated_indices(rows, 1.0 - drop, scheme="stride"):
            i = int(r) + 1
            from ..kernels.sobel import sobel_row_accurate

            sobel_row_accurate(res, img, i)
        outputs.append(res)
    mosaic = quadrant_mosaic(outputs)
    fig = QuadrantFigure(
        title=(
            "Figure 3: Sobel loop perforation "
            "(quadrants: accurate / 20% / 70% / 100% perforated)"
        ),
        labels=["accurate", "perf 20%", "perf 70%", "perf 100%"],
        mosaic=mosaic,
        psnr_db=quadrant_psnr(reference, mosaic),
    )
    if out_path is not None:
        fig.written = write_pgm(out_path, mosaic)
    return fig
