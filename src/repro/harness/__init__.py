"""Experiment harness: regenerate every table and figure of the paper.

Command line::

    python -m repro.harness table1
    python -m repro.harness table2 [--small]
    python -m repro.harness fig1 [--small] [--out results/]
    python -m repro.harness fig2 [--small] [--benchmark Sobel]
    python -m repro.harness fig3 [--small] [--out results/]
    python -m repro.harness fig4 [--small]
    python -m repro.harness all  [--small] [--out results/]
    python -m repro.harness sweep --workload sobel --policy gtb \\
        --policy lqh [--param R ...] [--parallel N] [--json rows.json]
"""

from .experiment import (
    NATIVE_PARAMS,
    CellResult,
    ExperimentCell,
    reference_output,
    run_cell,
)
from .figures import (
    POLICY_MODES,
    POLICY_NAMES,
    Fig2Data,
    Fig4Data,
    QuadrantFigure,
    fig1_sobel_approximation,
    fig2_benchmark,
    fig3_sobel_perforation,
    fig4_overhead,
)
from .export import to_dict, write_csv, write_json
from .report import bar_chart, format_float, format_table
from .tables import Table2Data, table1, table2_policy_accuracy

__all__ = [
    "ExperimentCell",
    "CellResult",
    "run_cell",
    "reference_output",
    "NATIVE_PARAMS",
    "POLICY_MODES",
    "POLICY_NAMES",
    "Fig2Data",
    "fig2_benchmark",
    "Fig4Data",
    "fig4_overhead",
    "QuadrantFigure",
    "fig1_sobel_approximation",
    "fig3_sobel_perforation",
    "table1",
    "Table2Data",
    "table2_policy_accuracy",
    "format_table",
    "format_float",
    "bar_chart",
    "to_dict",
    "write_json",
    "write_csv",
]
