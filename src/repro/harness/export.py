"""Machine-readable export of harness results (JSON / CSV).

The ASCII tables are for humans; downstream plotting and regression
tracking want structured data.  Every harness result object
(:class:`~repro.harness.figures.Fig2Data`,
:class:`~repro.harness.figures.Fig4Data`,
:class:`~repro.harness.tables.Table2Data`,
:class:`~repro.harness.figures.QuadrantFigure`) serializes to plain
dictionaries here, and :func:`write_json` / :func:`write_csv` persist
them.
"""

from __future__ import annotations

import csv
import json
import math
from pathlib import Path
from typing import Any

from ..experiment import ResultSet
from .figures import Fig2Data, Fig4Data, QuadrantFigure
from .tables import Table2Data

__all__ = [
    "fig2_to_rows",
    "fig4_to_rows",
    "table2_to_rows",
    "quadrants_to_rows",
    "resultset_to_rows",
    "to_dict",
    "write_json",
    "write_csv",
]


def _clean(v: Any) -> Any:
    """JSON-safe scalar (inf -> None, keeps strings/numbers)."""
    if isinstance(v, float) and not math.isfinite(v):
        return None
    return v


def fig2_to_rows(data: Fig2Data) -> list[dict]:
    """One row per measured cell of a Figure 2 panel."""
    rows: list[dict] = []

    def row(mode: str, degree: str, res) -> dict:
        return {
            "benchmark": data.benchmark,
            "mode": mode,
            "degree": degree,
            "makespan_s": res.makespan_s,
            "energy_j": res.energy_j,
            "quality_metric": res.quality.metric,
            "quality_value": _clean(res.quality.value),
            "accurate": res.report.accurate_tasks,
            "approximate": res.report.approximate_tasks,
            "dropped": res.report.dropped_tasks,
        }

    if data.accurate is not None:
        rows.append(row("accurate", "native", data.accurate))
    for (degree, mode), res in data.cells.items():
        rows.append(row(mode, degree.value, res))
    for degree, res in data.perforated.items():
        rows.append(row("perforated", degree.value, res))
    return rows


def fig4_to_rows(data: Fig4Data) -> list[dict]:
    return [
        {
            "benchmark": b,
            "mode": mode,
            "normalized_time": value,
        }
        for (b, mode), value in data.normalized.items()
    ]


def table2_to_rows(data: Table2Data) -> list[dict]:
    rows = []
    for b in data.benchmarks:
        for mode in Table2Data.MODES:
            rows.append(
                {
                    "benchmark": b,
                    "mode": mode,
                    "inversion_pct": data.inversions[(b, mode)],
                    "ratio_diff": data.ratio_diff[(b, mode)],
                }
            )
    return rows


def quadrants_to_rows(fig: QuadrantFigure) -> list[dict]:
    return [
        {
            "figure": fig.title,
            "quadrant": label,
            "psnr_db": _clean(p),
        }
        for label, p in zip(fig.labels, fig.psnr_db)
    ]


def resultset_to_rows(rs: ResultSet) -> list[dict]:
    """Rows of a :class:`~repro.experiment.ResultSet` (already flat)."""
    return [
        {k: _clean(v) for k, v in row.items()} for row in rs.to_rows()
    ]


_CONVERTERS = {
    Fig2Data: fig2_to_rows,
    Fig4Data: fig4_to_rows,
    Table2Data: table2_to_rows,
    QuadrantFigure: quadrants_to_rows,
    ResultSet: resultset_to_rows,
}


def to_dict(result: Any) -> list[dict]:
    """Dispatch any harness result object to its row form."""
    for cls, conv in _CONVERTERS.items():
        if isinstance(result, cls):
            return conv(result)
    raise TypeError(
        f"no exporter for {type(result).__name__}; expected one of "
        f"{[c.__name__ for c in _CONVERTERS]}"
    )


def write_json(result: Any, path: str | Path) -> Path:
    """Serialize a harness result to a JSON file of row objects."""
    p = Path(path)
    p.write_text(json.dumps(to_dict(result), indent=2, sort_keys=True))
    return p


def write_csv(result: Any, path: str | Path) -> Path:
    """Serialize a harness result to CSV (one header + one row/cell)."""
    rows = to_dict(result)
    if not rows:
        raise ValueError("nothing to export")
    p = Path(path)
    with p.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=list(rows[0]))
        writer.writeheader()
        writer.writerows(rows)
    return p
