"""Plain-text rendering helpers for harness output.

Everything the harness produces is rendered as aligned ASCII tables (no
plotting dependencies offline); the same renderers generate the
EXPERIMENTS.md sections.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_float", "bar_chart"]


def format_float(x: float, width: int = 9) -> str:
    """Compact fixed-width float: engineering-friendly, never wider."""
    if x == 0:
        return f"{0:>{width}.3g}"
    a = abs(x)
    if 1e-3 <= a < 1e5:
        s = f"{x:>{width}.4g}"
    else:
        s = f"{x:>{width}.2e}"
    return s if len(s) <= width else f"{x:>{width}.2e}"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows as a column-aligned text table."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(
            " | ".join(c.rjust(w) for c, w in zip(row, widths))
        )
    return "\n".join(lines)


def _cell(v: object) -> str:
    if isinstance(v, float):
        return format_float(v).strip()
    return str(v)


def bar_chart(
    labels: Sequence[str], values: Sequence[float], width: int = 46
) -> str:
    """Horizontal ASCII bar chart (used for the figure-style series)."""
    if len(labels) != len(values):
        raise ValueError("labels/values length mismatch")
    if not values:
        return "(empty)"
    peak = max(max(values), 1e-300)
    wl = max(len(x) for x in labels)
    lines = []
    for label, v in zip(labels, values):
        n = int(round(width * v / peak))
        lines.append(
            f"{label.ljust(wl)} |{'#' * n}{' ' * (width - n)}| "
            f"{format_float(v).strip()}"
        )
    return "\n".join(lines)
