"""Experiment runner: one cell of the paper's evaluation at a time.

An *experiment cell* fixes (benchmark, execution mode, degree) and
produces the three quantities Figure 2 plots — execution time, energy,
quality — plus the full :class:`~repro.runtime.stats.RunReport` for the
policy-accuracy statistics of Table 2.

Execution modes:

* ``policy:<spec>`` — the significance runtime under GTB / GTB-MaxBuffer
  / LQH / oracle (spec strings of
  :func:`repro.runtime.policies.make_policy`);
* ``accurate``      — the fully accurate reference on the
  significance-agnostic runtime (Figure 2's "accurate execution" line);
* ``perforated``    — the loop-perforation baseline (Figure 2's
  "perforation" line; absent where inapplicable).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..kernels.base import (
    Benchmark,
    Degree,
    PerforationNotApplicable,
    get_benchmark,
)
from ..quality.metrics import QualityValue
from ..runtime.policies import SignificanceAgnostic, make_policy
from ..runtime.scheduler import Scheduler
from ..runtime.stats import RunReport

__all__ = [
    "NATIVE_PARAMS",
    "ExperimentCell",
    "CellResult",
    "run_cell",
    "reference_output",
]

#: The "native" knob value per benchmark: what a fully accurate
#: execution uses (ratio 1.0 everywhere; Jacobi's native tolerance).
NATIVE_PARAMS: dict[str, float] = {
    "sobel": 1.0,
    "dct": 1.0,
    "mc": 1.0,
    "kmeans": 1.0,
    "jacobi": 1e-5,
    "fluidanimate": 1.0,
}


@dataclass(frozen=True)
class ExperimentCell:
    """One point of the evaluation grid."""

    benchmark: str
    mode: str  # "policy:gtb", "policy:lqh", "accurate", "perforated"
    degree: Degree | None = None
    n_workers: int = 16
    small: bool = False
    seed: int = 2015
    gtb_buffer: int = 32

    def describe(self) -> str:
        d = self.degree.value if self.degree else "native"
        return f"{self.benchmark}/{self.mode}/{d}"


@dataclass
class CellResult:
    """Measured outcome of one experiment cell."""

    cell: ExperimentCell
    makespan_s: float
    energy_j: float
    quality: QualityValue
    report: RunReport = field(repr=False)
    output: Any = field(repr=False, default=None)

    @property
    def label(self) -> str:
        return self.cell.describe()


def _build_policy(cell: ExperimentCell):
    mode = cell.mode
    if mode == "accurate" or mode == "perforated":
        return SignificanceAgnostic()
    if mode.startswith("policy:"):
        spec = mode.split(":", 1)[1]
        if spec == "gtb":
            return make_policy("gtb", buffer_size=cell.gtb_buffer)
        return make_policy(spec)
    raise ValueError(f"unknown experiment mode {mode!r}")


def _param_for(bench: Benchmark, cell: ExperimentCell) -> float:
    if cell.mode == "accurate":
        return NATIVE_PARAMS[bench.name.lower()]
    if cell.degree is None:
        raise ValueError(f"mode {cell.mode!r} requires a degree")
    return bench.degree_param(cell.degree)


_REFERENCE_CACHE: dict[tuple, Any] = {}


def reference_output(bench: Benchmark, seed: int) -> Any:
    """Fully accurate output (cached per benchmark/size/seed).

    The reference is the quality yardstick for every cell of the same
    benchmark, so computing it once per harness invocation matters for
    the full-size sweeps.
    """
    key = (bench.name, bench.small, seed)
    if key not in _REFERENCE_CACHE:
        inputs = bench.build_input(seed)
        _REFERENCE_CACHE[key] = bench.run_reference(inputs)
    return _REFERENCE_CACHE[key]


def run_cell(cell: ExperimentCell, keep_output: bool = False) -> CellResult:
    """Execute one experiment cell and measure time/energy/quality.

    Raises :class:`PerforationNotApplicable` for perforated cells of
    benchmarks where the baseline cannot be built (Fluidanimate).
    """
    bench = get_benchmark(cell.benchmark, small=cell.small)
    inputs = bench.build_input(cell.seed)
    reference = reference_output(bench, cell.seed)
    param = _param_for(bench, cell)

    policy = _build_policy(cell)
    rt = Scheduler(policy=policy, n_workers=cell.n_workers)
    if cell.mode == "perforated":
        if not bench.perforation_applicable:
            raise PerforationNotApplicable(bench.name)
        output = bench.run_perforated(rt, inputs, param)
    else:
        output = bench.run_tasks(rt, inputs, param)
    report = rt.finish()

    quality = bench.quality(reference, output)
    return CellResult(
        cell=cell,
        makespan_s=report.makespan_s,
        energy_j=report.energy_j,
        quality=quality,
        report=report,
        output=output if keep_output else None,
    )
