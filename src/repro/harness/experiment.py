"""Experiment runner: one cell of the paper's evaluation at a time.

An *experiment cell* fixes (benchmark, execution mode, degree) and
produces the three quantities Figure 2 plots — execution time, energy,
quality — plus the full :class:`~repro.runtime.stats.RunReport` for the
policy-accuracy statistics of Table 2.

Execution modes:

* ``policy:<spec>`` — the significance runtime under GTB / GTB-MaxBuffer
  / LQH / oracle (any ``"policy"`` spec of :mod:`repro.registry`, e.g.
  ``policy:gtb:buffer_size=8``);
* ``accurate``      — the fully accurate reference on the
  significance-agnostic runtime (Figure 2's "accurate execution" line);
* ``perforated``    — the loop-perforation baseline (Figure 2's
  "perforation" line; absent where inapplicable).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..config import RuntimeConfig
from ..experiment import ExperimentSpec, run_one
from ..kernels.base import (
    Benchmark,
    Degree,
    PerforationNotApplicable,
    get_benchmark,
)
from ..quality.metrics import QualityValue
from ..runtime.stats import RunReport

__all__ = [
    "NATIVE_PARAMS",
    "ExperimentCell",
    "CellResult",
    "run_cell",
    "reference_output",
]

#: The "native" knob value per benchmark: what a fully accurate
#: execution uses (ratio 1.0 everywhere; Jacobi's native tolerance).
NATIVE_PARAMS: dict[str, float] = {
    "sobel": 1.0,
    "dct": 1.0,
    "mc": 1.0,
    "kmeans": 1.0,
    "jacobi": 1e-5,
    "fluidanimate": 1.0,
}


@dataclass(frozen=True)
class ExperimentCell:
    """One point of the evaluation grid."""

    benchmark: str
    mode: str  # "policy:gtb", "policy:lqh", "accurate", "perforated"
    degree: Degree | None = None
    n_workers: int = 16
    small: bool = False
    seed: int = 2015
    gtb_buffer: int = 32

    def describe(self) -> str:
        d = self.degree.value if self.degree else "native"
        return f"{self.benchmark}/{self.mode}/{d}"

    # -- new-API bridges ---------------------------------------------------
    def policy_spec(self) -> str:
        """The registry policy spec this cell's mode denotes."""
        if self.mode in ("accurate", "perforated"):
            return "accurate"
        if self.mode.startswith("policy:"):
            spec = self.mode.split(":", 1)[1]
            if spec == "gtb":
                return f"gtb:buffer_size={self.gtb_buffer}"
            return spec
        raise ValueError(f"unknown experiment mode {self.mode!r}")

    def runtime_config(self) -> RuntimeConfig:
        return RuntimeConfig(
            policy=self.policy_spec(), n_workers=self.n_workers
        )

    def to_spec(self) -> ExperimentSpec:
        """This cell as a declarative :class:`ExperimentSpec`."""
        if self.mode == "accurate":
            param = None  # run_one substitutes the native knob
        else:
            if self.degree is None:
                raise ValueError(f"mode {self.mode!r} requires a degree")
            bench = get_benchmark(self.benchmark, small=self.small)
            param = bench.degree_param(self.degree)
        return ExperimentSpec(
            workload=self.benchmark,
            param=param,
            mode="perforated" if self.mode == "perforated" else "tasks",
            config=self.runtime_config(),
            seed=self.seed,
            small=self.small,
        )


@dataclass
class CellResult:
    """Measured outcome of one experiment cell."""

    cell: ExperimentCell
    makespan_s: float
    energy_j: float
    quality: QualityValue
    report: RunReport = field(repr=False)
    output: Any = field(repr=False, default=None)

    @property
    def label(self) -> str:
        return self.cell.describe()


_REFERENCE_CACHE: dict[tuple, Any] = {}


def reference_output(bench: Benchmark, seed: int) -> Any:
    """Fully accurate output (cached per benchmark/size/seed).

    The reference is the quality yardstick for every cell of the same
    benchmark, so computing it once per harness invocation matters for
    the full-size sweeps.
    """
    key = (bench.name, bench.small, seed)
    if key not in _REFERENCE_CACHE:
        inputs = bench.build_input(seed)
        _REFERENCE_CACHE[key] = bench.run_reference(inputs)
    return _REFERENCE_CACHE[key]


def run_cell(cell: ExperimentCell, keep_output: bool = False) -> CellResult:
    """Execute one experiment cell and measure time/energy/quality.

    A thin bridge onto :func:`repro.experiment.run_one`: the cell is
    translated to an :class:`~repro.experiment.ExperimentSpec` and the
    flat measurements come back as a :class:`CellResult`.

    Raises :class:`PerforationNotApplicable` for perforated cells of
    benchmarks where the baseline cannot be built (Fluidanimate).
    """
    res = run_one(
        cell.to_spec(), seed=cell.seed, keep_output=keep_output
    )
    return CellResult(
        cell=cell,
        makespan_s=res.makespan_s,
        energy_j=res.energy_j,
        quality=QualityValue(res.quality_metric, res.quality_value),
        report=res.report,
        output=res.output,
    )
