"""CLI entry point: ``python -m repro.harness <experiment>``.

Besides the paper's tables and figures, ``sweep`` runs declarative
experiment grids through :func:`repro.run`::

    python -m repro.harness sweep --workload sobel --small \\
        --policy gtb:buffer_size=16 --policy lqh --param 0.3 --param 0.8 \\
        --parallel 4 --json results.json
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from ..config import RuntimeConfig
from ..experiment import ExperimentSpec, run
from ..kernels.base import benchmark_names
from .figures import (
    fig1_sobel_approximation,
    fig2_benchmark,
    fig3_sobel_perforation,
    fig4_overhead,
)
from .tables import table1, table2_policy_accuracy


def _run_sweep(args) -> int:
    """The ``sweep`` subcommand: an ExperimentSpec grid to a ResultSet."""
    base = ExperimentSpec(
        workload=(args.workload or ["sobel"])[0],
        mode=args.mode,
        config=RuntimeConfig(
            policy=(args.policy or ["accurate"])[0],
            n_workers=args.workers,
            engine=args.engine,
        ),
        repeats=args.repeats,
        small=args.small,
    )
    axes = {}
    if args.workload and len(args.workload) > 1:
        axes["workload"] = args.workload
    if args.policy and len(args.policy) > 1:
        axes["policy"] = args.policy
    if args.param:
        axes["param"] = args.param
    specs = base.sweep(**axes) if axes else [base]
    results = run(specs, parallel=args.parallel)
    print(results.table())
    if args.json:
        results.to_json(args.json)
        print(f"rows written to {args.json}", file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=[
            "table1", "table2", "fig1", "fig2", "fig3", "fig4", "all",
            "sweep",
        ],
    )
    parser.add_argument(
        "--small",
        action="store_true",
        help="shrunken workloads (seconds instead of minutes)",
    )
    parser.add_argument(
        "--benchmark",
        default=None,
        help="restrict fig2 to one benchmark",
    )
    parser.add_argument(
        "--workers", type=int, default=16, help="simulated worker cores"
    )
    parser.add_argument(
        "--out", default=None, help="directory for PGM outputs (fig1/fig3)"
    )
    parser.add_argument(
        "--workload",
        action="append",
        default=None,
        help="sweep: benchmark name (repeatable)",
    )
    parser.add_argument(
        "--policy",
        action="append",
        default=None,
        help="sweep: policy spec, e.g. gtb:buffer_size=16 (repeatable)",
    )
    parser.add_argument(
        "--param",
        action="append",
        type=float,
        default=None,
        help="sweep: knob value (repeatable; default: native)",
    )
    parser.add_argument(
        "--mode",
        default="tasks",
        choices=["tasks", "perforated", "overhead"],
        help="sweep: execution mode",
    )
    parser.add_argument(
        "--engine",
        default="simulated",
        help="sweep: engine spec (simulated/threaded/sequential/...)",
    )
    parser.add_argument(
        "--repeats", type=int, default=1, help="sweep: repeats per cell"
    )
    parser.add_argument(
        "--parallel",
        type=int,
        default=None,
        help="sweep: process-parallel fan-out width",
    )
    parser.add_argument(
        "--json", default=None, help="sweep: write result rows to this file"
    )
    args = parser.parse_args(argv)

    if args.experiment == "sweep":
        return _run_sweep(args)

    out_dir = None
    if args.out:
        out_dir = Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)

    def pgm(name: str) -> Path | None:
        return out_dir / name if out_dir else None

    t0 = time.perf_counter()
    todo = (
        ["table1", "table2", "fig1", "fig2", "fig3", "fig4"]
        if args.experiment == "all"
        else [args.experiment]
    )
    for exp in todo:
        if exp == "table1":
            print(table1())
        elif exp == "table2":
            print(
                table2_policy_accuracy(
                    small=args.small, n_workers=args.workers
                ).render()
            )
        elif exp == "fig1":
            print(
                fig1_sobel_approximation(
                    small=args.small,
                    n_workers=args.workers,
                    out_path=pgm("fig1_sobel_approx.pgm"),
                ).render()
            )
        elif exp == "fig2":
            names = (
                [args.benchmark] if args.benchmark else benchmark_names()
            )
            for name in names:
                print(
                    fig2_benchmark(
                        name, small=args.small, n_workers=args.workers
                    ).render()
                )
                print()
        elif exp == "fig3":
            print(
                fig3_sobel_perforation(
                    small=args.small,
                    n_workers=args.workers,
                    out_path=pgm("fig3_sobel_perforation.pgm"),
                ).render()
            )
        elif exp == "fig4":
            print(
                fig4_overhead(
                    small=args.small, n_workers=args.workers
                ).render()
            )
        print()
    print(f"[{time.perf_counter() - t0:.1f}s total]", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
