"""CLI entry point: ``python -m repro.harness <experiment>``.

Besides the paper's tables and figures, ``sweep`` runs declarative
experiment grids through :func:`repro.run`::

    python -m repro.harness sweep --workload sobel --small \\
        --policy gtb:buffer_size=16 --policy lqh --param 0.3 --param 0.8 \\
        --parallel 4 --json results.json

``bench`` runs the :mod:`repro.bench` performance probes, writing
the ``BENCH_runtime.json`` trajectory artifact and (optionally) gating
on a committed baseline::

    python -m repro.harness bench --json BENCH_runtime.json \\
        --baseline benchmarks/baselines/bench_baseline.json

and ``serve`` boots the :mod:`repro.serve` JSON-lines TCP gateway (or,
with ``--smoke N``, drives ``N`` mixed-tenant jobs through it across
two execution backends and exits nonzero on any transport failure).
With ``--shards N`` the gateway fronts a sharded
:class:`~repro.cluster.service.ClusterService` instead of a single
service::

    python -m repro.harness serve --port 7915 \\
        --tenant "premium:name='alice'" --tenant "free:name='bob'"
    python -m repro.harness serve --smoke 200 --shards 4

``top`` renders a refreshing live view of a running gateway (tenant
Joules vs budget, governor actuation, cache bands, ledger leases,
stream lanes, data-plane bytes) over its ``stats``/``metrics`` verbs::

    python -m repro.harness top --port 7915 --interval 2
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

from ..config import RuntimeConfig
from ..experiment import ExperimentSpec, run
from ..kernels.base import benchmark_names
from .figures import (
    fig1_sobel_approximation,
    fig2_benchmark,
    fig3_sobel_perforation,
    fig4_overhead,
    fig_energy_budget,
)
from .tables import table1, table2_policy_accuracy

#: Tenant roster the serve smoke mode provisions: one unmetered
#: standard tenant plus one tightly budgeted free tenant, so the smoke
#: traffic exercises execution, caching *and* shedding paths.
SMOKE_TENANTS = (
    "standard:name='acme'",
    "free:name='hobby',budget_j=0.004,max_pending=1024",
)

#: Backends the smoke pushes jobs across (the ISSUE's "two backends").
SMOKE_ENGINES = ("simulated", "threaded")


#: Default locations for the bench artifact and its baselines.  Gating
#: baselines are per workload size: comparing a small run against
#: full-size numbers would produce bogus verdicts (the end-to-end and
#: throughput metrics differ by well over the tolerance across sizes).
BENCH_OUTPUT = "BENCH_runtime.json"
BENCH_BASELINE = "benchmarks/baselines/bench_baseline.json"
BENCH_BASELINE_SMALL = "benchmarks/baselines/bench_baseline_small.json"
BENCH_SEED_BASELINE = "benchmarks/baselines/bench_seed.json"


def _baseline_size_mismatch(path: Path, small: bool) -> bool:
    """Whether a baseline report was recorded at the other size."""
    import json

    try:
        config = json.loads(path.read_text()).get("config", {})
    except (OSError, json.JSONDecodeError):
        return False  # unreadable files fail later, with a better error
    recorded = config.get("small")
    return recorded is not None and bool(recorded) is not small


def _run_bench(args) -> int:
    """The ``bench`` subcommand: measure, write JSON, gate on baselines."""
    from ..bench import BenchConfig, format_metrics_table, run_bench
    from ..runtime.errors import ConfigError

    small = args.small or bool(
        int(os.environ.get("REPRO_BENCH_SMALL", "0") or "0")
    )
    default_gate = BENCH_BASELINE_SMALL if small else BENCH_BASELINE
    baselines: dict[str, Path] = {}
    baseline = args.baseline or (
        default_gate if Path(default_gate).exists() else None
    )
    if baseline and not args.no_baseline:
        gate_path = Path(baseline)
        if _baseline_size_mismatch(gate_path, small):
            raise ConfigError(
                f"gating baseline {gate_path} was recorded at the other "
                f"workload size (current run: small={small}); pass a "
                "size-matched baseline or --no-baseline"
            )
        baselines["baseline"] = gate_path
    seed = args.seed_baseline or (
        BENCH_SEED_BASELINE if Path(BENCH_SEED_BASELINE).exists() else None
    )
    if seed:
        seed_path = Path(seed)
        if _baseline_size_mismatch(seed_path, small):
            # Informational only -> warn instead of failing the run.
            print(
                f"note: seed reference {seed_path} was recorded at the "
                "other workload size; skipping the seed comparison",
                file=sys.stderr,
            )
        else:
            baselines["seed"] = seed_path

    config = BenchConfig(
        small=small,
        repeats=args.repeats if args.repeats is not None else 5,
        workloads=tuple(args.bench_workload or ()),
        baselines=baselines,
        tolerance=args.tolerance,
    )
    report = run_bench(config)
    out = report.write(args.json or BENCH_OUTPUT)

    print(format_metrics_table(report.metrics))
    for comparison in report.comparisons.values():
        print()
        print(comparison.summary())
    print(f"\nbench report written to {out}", file=sys.stderr)

    if args.update_baseline:
        # Gating baselines carry measurements of *this* tree; refresh on
        # demand (e.g. after a deliberate perf change), never silently.
        # The default target matches the run's size, so a small run can
        # never clobber the full-size baseline by accident.
        target = Path(args.baseline or default_gate)
        target.parent.mkdir(parents=True, exist_ok=True)
        report.write(target)
        print(f"baseline updated: {target}", file=sys.stderr)

    gate = report.comparisons.get("baseline")
    if gate is not None and not gate.ok:
        names = ", ".join(m.name for m in gate.regressions)
        print(f"PERF REGRESSION (> {gate.tolerance:.0%}): {names}",
              file=sys.stderr)
        return 1
    return 0


def _boot_gateway(server):
    """Run a ServeServer's event loop on a daemon thread; return
    ``(host, port, shutdown)``."""
    import asyncio
    import threading

    loop = asyncio.new_event_loop()

    def pump() -> None:
        asyncio.set_event_loop(loop)
        loop.run_forever()

    thread = threading.Thread(target=pump, daemon=True)
    thread.start()
    host, port = asyncio.run_coroutine_threadsafe(
        server.start(), loop
    ).result(30)

    def shutdown() -> None:
        asyncio.run_coroutine_threadsafe(server.close(), loop).result(30)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(10)

    return host, port, shutdown


def _make_service(engine: str, workers: int, tenants: tuple, shards: int):
    """One serving backend: a single TaskService, or a sharded
    ClusterService when ``shards > 1`` (same duck-typed contract)."""
    from ..config import RuntimeConfig
    from ..serve import TaskService

    config = RuntimeConfig(
        policy="gtb-max",
        n_workers=workers,
        engine=engine,
        tenants=tenants,
    )
    if shards > 1:
        from ..cluster import ClusterService

        return ClusterService(config.replace(cluster=shards))
    return TaskService(config)


def _serve_smoke(n_jobs: int, workers: int, shards: int = 1) -> int:
    """Push ``n_jobs`` mixed-tenant jobs through live TCP gateways on
    each smoke backend; nonzero on any transport/protocol failure."""
    from ..serve import ServeClient, ServeServer

    per_engine = max(1, n_jobs // len(SMOKE_ENGINES))
    failures = 0
    for engine in SMOKE_ENGINES:
        service = _make_service(engine, workers, SMOKE_TENANTS, shards)
        server = ServeServer(service)
        host, port, shutdown = _boot_gateway(server)
        outcomes: dict[str, int] = {}
        try:
            with ServeClient(host, port, timeout_s=120.0) as client:
                assert client.ping()
                for i in range(per_engine):
                    tenant = "acme" if i % 2 == 0 else "hobby"
                    if i % 3 == 0:
                        kernel, kargs = "mc-pi", {
                            "blocks": 8,
                            "samples": 200,
                            "seed": i % 7,
                        }
                    else:
                        kernel, kargs = "sobel", {
                            "size": 32,
                            "seed": i % 5,
                        }
                    job = client.submit(
                        tenant, kernel, kargs, ratio=0.9
                    )
                    status = job["status"]
                    outcomes[status] = outcomes.get(status, 0) + 1
                    if job["code"] not in (200, 429):
                        failures += 1
                stats = client.stats()
                try:
                    metrics = client.metrics()
                    prom = client.metrics(format="prometheus")
                except Exception:
                    metrics, prom = None, ""  # REPRO_OBS=0
        finally:
            shutdown()
            service.close()
        if metrics is not None:
            failures += _check_scrape(engine, stats, metrics, prom, shards)
        served = sum(
            n for s, n in outcomes.items() if not s.startswith("rejected")
        )
        print(
            f"[serve-smoke] {engine}: {per_engine} jobs -> {outcomes}; "
            f"cache {stats['cache']['hits']}+"
            f"{stats['cache']['degraded_hits']} hits, "
            f"{stats['rounds']} rounds",
        )
        if served == 0:
            failures += 1
    if failures:
        print(f"serve smoke FAILED ({failures} bad jobs)", file=sys.stderr)
        return 1
    print("serve smoke OK", file=sys.stderr)
    return 0


def _check_scrape(
    engine: str, stats: dict, metrics: dict, prom: str, shards: int
) -> int:
    """Reconcile one live ``metrics`` scrape against the ``stats``
    digest: per-tenant energy parity within 2%, cache series present,
    ledger lease occupancy visible on sharded clusters."""
    bad = 0
    energy = {
        s["labels"]["tenant"]: s["value"]
        for s in metrics.get(
            "repro_tenant_energy_joules_total", {"series": []}
        )["series"]
    }
    for name, tenant in stats["tenants"].items():
        spent = tenant["spent_j"]
        scraped = energy.get(name, 0.0)
        if spent > 0 and abs(scraped - spent) > 0.02 * spent:
            print(
                f"[serve-smoke] {engine}: tenant {name!r} energy "
                f"scrape {scraped} J vs stats {spent} J (>2% apart)",
                file=sys.stderr,
            )
            bad += 1
    if "repro_cache_lookups_total" not in metrics:
        print(
            f"[serve-smoke] {engine}: no cache series in scrape",
            file=sys.stderr,
        )
        bad += 1
    if shards > 1 and "repro_ledger_lease_remaining_joules" not in metrics:
        print(
            f"[serve-smoke] {engine}: no ledger lease series in scrape",
            file=sys.stderr,
        )
        bad += 1
    if "# TYPE repro_jobs_total counter" not in prom:
        print(
            f"[serve-smoke] {engine}: malformed prometheus exposition",
            file=sys.stderr,
        )
        bad += 1
    if not bad:
        print(
            f"[serve-smoke] {engine}: metrics scrape reconciles "
            f"({len(energy)} tenant energy series)"
        )
    return bad


def _run_serve(args) -> int:
    """The ``serve`` subcommand: boot the TCP gateway (or smoke it)."""
    if args.smoke is not None:
        return _serve_smoke(args.smoke, args.workers, args.shards)

    import asyncio

    from ..serve import ServeServer

    tenants = tuple(args.tenant or ("standard:name='default'",))
    service = _make_service(
        args.engine, args.workers, tenants, args.shards
    )
    server = ServeServer(service, host=args.host, port=args.port)

    async def run() -> None:
        host, port = await server.start()
        shape = (
            f"{args.shards} shards" if args.shards > 1 else "1 service"
        )
        print(
            f"repro.serve gateway on {host}:{port} "
            f"(engine={args.engine}, {shape}, tenants={len(tenants)}) "
            "— Ctrl-C to stop",
            file=sys.stderr,
        )
        try:
            await asyncio.Event().wait()
        finally:
            await server.close()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    finally:
        service.close()
    return 0


def _run_scenarios(args) -> int:
    """The ``fig-scenarios`` subcommand: render every scenario figure
    and gate on its machine-checked assertions (the conformance
    harness's CLI face)."""
    from ..serve.scenarios import run_scenarios

    reports = run_scenarios(
        args.scenario, small=args.small, n_workers=args.workers
    )
    failed = []
    for report in reports:
        print(report.render())
        print()
        if not report.passed:
            failed.append(report.name)
    if failed:
        print(
            f"scenario conformance FAILED: {', '.join(failed)}",
            file=sys.stderr,
        )
        return 1
    print(
        f"all {len(reports)} scenarios conform", file=sys.stderr
    )
    return 0


def _run_sweep(args) -> int:
    """The ``sweep`` subcommand: an ExperimentSpec grid to a ResultSet."""
    base = ExperimentSpec(
        workload=(args.workload or ["sobel"])[0],
        mode=args.mode,
        config=RuntimeConfig(
            policy=(args.policy or ["accurate"])[0],
            n_workers=args.workers,
            engine=args.engine,
        ),
        repeats=args.repeats if args.repeats is not None else 1,
        small=args.small,
    )
    axes = {}
    if args.workload and len(args.workload) > 1:
        axes["workload"] = args.workload
    if args.policy and len(args.policy) > 1:
        axes["policy"] = args.policy
    if args.param:
        axes["param"] = args.param
    specs = base.sweep(**axes) if axes else [base]
    results = run(specs, parallel=args.parallel)
    print(results.table())
    if args.json:
        results.to_json(args.json)
        print(f"rows written to {args.json}", file=sys.stderr)
    return 0


def _run_top(args) -> int:
    """The ``top`` subcommand: live telemetry view of a gateway."""
    from ..obs import run_top

    if args.port == 0:
        print(
            "top needs the gateway's port (--port N)", file=sys.stderr
        )
        return 2
    return run_top(
        args.host,
        args.port,
        interval_s=args.interval,
        iterations=args.iterations,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=[
            "table1", "table2", "fig1", "fig2", "fig3", "fig4",
            "fig-energy-budget", "fig-serve", "fig-cluster",
            "fig-compile", "fig-scenarios", "all", "sweep", "bench",
            "serve", "top",
        ],
    )
    parser.add_argument(
        "--small",
        action="store_true",
        help="shrunken workloads (seconds instead of minutes)",
    )
    parser.add_argument(
        "--benchmark",
        default=None,
        help="restrict fig2 to one benchmark",
    )
    parser.add_argument(
        "--workers", type=int, default=16, help="simulated worker cores"
    )
    parser.add_argument(
        "--out", default=None, help="directory for PGM outputs (fig1/fig3)"
    )
    parser.add_argument(
        "--workload",
        action="append",
        default=None,
        help="sweep: benchmark name (repeatable)",
    )
    parser.add_argument(
        "--policy",
        action="append",
        default=None,
        help="sweep: policy spec, e.g. gtb:buffer_size=16 (repeatable)",
    )
    parser.add_argument(
        "--param",
        action="append",
        type=float,
        default=None,
        help="sweep: knob value (repeatable; default: native)",
    )
    parser.add_argument(
        "--mode",
        default="tasks",
        choices=["tasks", "perforated", "overhead"],
        help="sweep: execution mode",
    )
    parser.add_argument(
        "--engine",
        default="simulated",
        help="sweep: engine spec (simulated/threaded/process/"
        "sequential/...)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="sweep: repeats per cell (default 1); bench: timing repeats "
        "per probe (default 5)",
    )
    parser.add_argument(
        "--parallel",
        type=int,
        default=None,
        help="sweep: process-parallel fan-out width",
    )
    parser.add_argument(
        "--json",
        default=None,
        help="sweep: write result rows to this file; "
        "bench: report path (default BENCH_runtime.json)",
    )
    parser.add_argument(
        "--bench-workload",
        action="append",
        default=None,
        help="bench: restrict to one probe (repeatable; "
        "scheduler_throughput/spawn_overhead/spawn_many/"
        "backend_matrix/end_to_end/governor_convergence/"
        "serve_throughput/obs_overhead/compile_specialization/"
        "serve_cluster/payload_bandwidth/sweep_pool/serve_scenarios)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="bench: gating baseline report (default: the size-matched "
        f"committed baseline, {BENCH_BASELINE} or "
        f"{BENCH_BASELINE_SMALL}, when present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="bench: skip baseline gating even if a baseline exists",
    )
    parser.add_argument(
        "--seed-baseline",
        default=None,
        help="bench: informational pre-PR reference report "
        f"(default {BENCH_SEED_BASELINE} when present)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="bench: fractional regression tolerance (default 0.25)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="bench: rewrite the active gating baseline (--baseline or "
        "the size-matched default) from this run",
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="serve: bind address (default 127.0.0.1)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=0,
        help="serve: TCP port (default 0 = ephemeral)",
    )
    parser.add_argument(
        "--tenant",
        action="append",
        default=None,
        help="serve: tenant spec, e.g. \"premium:name='alice'\" "
        "(repeatable; default one unmetered standard tenant)",
    )
    parser.add_argument(
        "--smoke",
        type=int,
        default=None,
        metavar="N",
        help="serve: instead of serving, push N mixed-tenant jobs "
        "through live gateways on two backends and exit",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help="serve: front a sharded ClusterService with N shards "
        "(default 1 = a single TaskService)",
    )
    parser.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="top: seconds between scrapes (default 2)",
    )
    parser.add_argument(
        "--iterations",
        type=int,
        default=None,
        metavar="N",
        help="top: render N frames and exit (default: loop forever)",
    )
    parser.add_argument(
        "--scenario",
        action="append",
        default=None,
        help="fig-scenarios: restrict to one scenario (repeatable; "
        "default all registered scenarios)",
    )
    args = parser.parse_args(argv)

    if args.experiment == "sweep":
        return _run_sweep(args)
    if args.experiment == "bench":
        return _run_bench(args)
    if args.experiment == "serve":
        return _run_serve(args)
    if args.experiment == "top":
        return _run_top(args)
    if args.experiment == "fig-scenarios":
        return _run_scenarios(args)

    out_dir = None
    if args.out:
        out_dir = Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)

    def pgm(name: str) -> Path | None:
        return out_dir / name if out_dir else None

    t0 = time.perf_counter()
    todo = (
        ["table1", "table2", "fig1", "fig2", "fig3", "fig4"]
        if args.experiment == "all"
        else [args.experiment]
    )
    for exp in todo:
        if exp == "table1":
            print(table1())
        elif exp == "table2":
            print(
                table2_policy_accuracy(
                    small=args.small, n_workers=args.workers
                ).render()
            )
        elif exp == "fig1":
            print(
                fig1_sobel_approximation(
                    small=args.small,
                    n_workers=args.workers,
                    out_path=pgm("fig1_sobel_approx.pgm"),
                ).render()
            )
        elif exp == "fig2":
            names = (
                [args.benchmark] if args.benchmark else benchmark_names()
            )
            for name in names:
                print(
                    fig2_benchmark(
                        name, small=args.small, n_workers=args.workers
                    ).render()
                )
                print()
        elif exp == "fig3":
            print(
                fig3_sobel_perforation(
                    small=args.small,
                    n_workers=args.workers,
                    out_path=pgm("fig3_sobel_perforation.pgm"),
                ).render()
            )
        elif exp == "fig4":
            print(
                fig4_overhead(
                    small=args.small, n_workers=args.workers
                ).render()
            )
        elif exp == "fig-energy-budget":
            print(
                fig_energy_budget(
                    small=args.small, n_workers=args.workers
                ).render()
            )
        elif exp == "fig-serve":
            from ..serve.figure import fig_serve

            print(
                fig_serve(
                    small=args.small,
                    n_workers=args.workers,
                    engine=args.engine,
                ).render()
            )
        elif exp == "fig-cluster":
            from ..cluster.figure import fig_cluster

            print(
                fig_cluster(
                    small=args.small,
                    n_workers=args.workers,
                    engine=args.engine,
                ).render()
            )
        elif exp == "fig-compile":
            from ..compiler.figure import fig_compile

            print(
                fig_compile(
                    small=args.small,
                    n_workers=args.workers,
                    engine=args.engine,
                ).render()
            )
        print()
    print(f"[{time.perf_counter() - t0:.1f}s total]", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
