"""K-means clustering — Table 1 row "Kmeans".

"K-means clustering aims to partition n observations in a
multi-dimensional space into k clusters ... In each iteration the
algorithm spawns a number of tasks, each being responsible for a subset
of the entire problem.  All tasks are assigned the same significance
value.  The degree of approximation is controlled by the ratio used at
taskwait pragmas.  Approximated tasks compute a simpler version of the
euclidean distance, while at the same time considering only a subset
(1/8) of the dimensions.  Only accurate results are considered when
evaluating the convergence criteria" (section 4.1).

Convergence follows section 4.2: "The application terminates when the
number of objects which move to another cluster is less than 1/1000 of
the total object population" — counting only accurately-processed
objects, which is exactly what makes LQH converge slowly (it accurately
evaluates *different* objects every iteration, while deterministic GTB
always picks the same ones).

Each task assigns one chunk of points to the nearest centroid and
returns partial sums; the master reduces them into new centroids.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..perforation import perforated_indices
from ..quality.metrics import QualityValue
from ..runtime.scheduler import Scheduler
from ..runtime.task import ExecutionKind, TaskCost
from .base import Benchmark, Degree, register

__all__ = [
    "KmeansProblem",
    "assign_chunk_accurate",
    "assign_chunk_approx",
    "kmeans_chunk_cost",
    "inertia",
    "KmeansBenchmark",
]

#: Fraction of dimensions the approximate distance considers.
APPROX_DIM_FRACTION = 1.0 / 8.0
#: Work units per point-centroid distance evaluation, per dimension.
OPS_PER_DIM = 3.0
#: Uniform task significance ("All tasks are assigned the same
#: significance value").
UNIFORM_SIGNIFICANCE = 0.5
#: Convergence: moved objects < population / 1000.
CONVERGENCE_DIVISOR = 1000
MAX_ITERATIONS = 60


@dataclass
class KmeansProblem:
    """One clustering workload: points plus deterministic initial
    centroids.

    Initialization is greedy farthest-point (maxmin) seeding: start
    from the first point and repeatedly add the point farthest from the
    chosen set.  On well-separated blobs this reliably seeds one
    centroid per cluster, so the accurate run, the approximated runs
    and the perforated run all descend into the *same* basin — the
    precondition for the paper's graceful sub-percent errors (naive
    Forgy init can merge two blobs and flip basins between variants,
    which shows up as tens-of-percent inertia differences).
    """

    points: np.ndarray  # (n, d)
    k: int

    @property
    def initial_centroids(self) -> np.ndarray:
        pts = self.points
        chosen = [0]
        min_d2 = np.einsum(
            "pd,pd->p", pts - pts[0], pts - pts[0]
        )
        for _ in range(1, self.k):
            nxt = int(np.argmax(min_d2))
            chosen.append(nxt)
            d2 = np.einsum(
                "pd,pd->p", pts - pts[nxt], pts - pts[nxt]
            )
            min_d2 = np.minimum(min_d2, d2)
        return pts[chosen].copy()


def _partial_result(
    points: np.ndarray,
    chunk: slice,
    new_labels: np.ndarray,
    k: int,
):
    """Partial sums and counts over a freshly assigned chunk."""
    d = points.shape[1]
    sums = np.zeros((k, d))
    counts = np.zeros(k, dtype=np.int64)
    np.add.at(sums, new_labels, points[chunk])
    np.add.at(counts, new_labels, 1)
    return sums, counts


def assign_chunk_accurate(
    points: np.ndarray,
    centroids: np.ndarray,
    labels: np.ndarray,
    lo: int,
    hi: int,
):
    """Accurate task body: full Euclidean assignment for points[lo:hi].

    Updates the shared label array (the record of the last *accurate*
    assignment of each point) and reports how many points moved
    relative to it — the quantity the convergence test counts.
    """
    chunk = slice(lo, hi)
    diff = points[chunk, None, :] - centroids[None, :, :]
    dist2 = np.einsum("pkd,pkd->pk", diff, diff)
    new_labels = np.argmin(dist2, axis=1)
    moved = int(np.count_nonzero(new_labels != labels[chunk]))
    labels[chunk] = new_labels
    sums, counts = _partial_result(points, chunk, new_labels, len(centroids))
    return sums, counts, moved


def assign_chunk_approx(
    points: np.ndarray,
    centroids: np.ndarray,
    labels: np.ndarray,
    lo: int,
    hi: int,
):
    """Approximate body: Manhattan distance over 1/8 of the dimensions.

    Produces the chunk's (cheap) assignment for the program output but
    does *not* touch the shared accurate-label record: "objects which
    are computed approximately do not participate in the termination
    criteria" — letting approximate assignments overwrite the labels
    would make every later accurate visit look like a mass move and
    stall convergence (the failure mode is worst under LQH, which
    accurately visits different chunks every iteration).
    """
    chunk = slice(lo, hi)
    d = points.shape[1]
    d_sub = max(1, int(d * APPROX_DIM_FRACTION))
    diff = points[chunk, None, :d_sub] - centroids[None, :, :d_sub]
    dist = np.abs(diff).sum(axis=2)
    new_labels = np.argmin(dist, axis=1)
    sums, counts = _partial_result(points, chunk, new_labels, len(centroids))
    return sums, counts, 0


def kmeans_chunk_cost(chunk_size: int, k: int, d: int) -> TaskCost:
    d_sub = max(1, int(d * APPROX_DIM_FRACTION))
    return TaskCost(
        accurate=chunk_size * k * d * OPS_PER_DIM,
        approximate=chunk_size * k * d_sub * OPS_PER_DIM,
    )


def inertia(points: np.ndarray, centroids: np.ndarray) -> float:
    """Sum of squared distances to the nearest centroid (the k-means
    objective; the scalar whose relative error we report)."""
    diff = points[:, None, :] - centroids[None, :, :]
    dist2 = np.einsum("pkd,pkd->pk", diff, diff)
    return float(dist2.min(axis=1).sum())


@register
class KmeansBenchmark(Benchmark):
    """K-means ported to the significance programming model."""

    name = "Kmeans"
    approx_mode = "A"
    quality_metric = "Rel.Err"
    degrees = {
        Degree.MILD: 0.80,
        Degree.MEDIUM: 0.60,
        Degree.AGGRESSIVE: 0.40,
    }

    GROUP = "kmeans"

    def __init__(self, small: bool = False) -> None:
        super().__init__(small)
        self.n_points = 512 if small else 4096
        self.dims = 16
        self.k = 8
        self.chunk = 32 if small else 64

    # ------------------------------------------------------------------
    def build_input(self, seed: int = 2015) -> KmeansProblem:
        """Gaussian blobs around k random centers (deterministic).

        The point set is also cached on the instance because
        :meth:`quality` evaluates the clustering objective on it.
        """
        rng = np.random.default_rng(seed)
        centers = rng.uniform(-6, 6, size=(self.k, self.dims))
        which = rng.integers(0, self.k, size=self.n_points)
        pts = centers[which] + rng.normal(0, 1.0, (self.n_points, self.dims))
        self._points_cache = pts
        return KmeansProblem(points=pts, k=self.k)

    def _chunks(self) -> list[tuple[int, int]]:
        return [
            (lo, min(lo + self.chunk, self.n_points))
            for lo in range(0, self.n_points, self.chunk)
        ]

    # ------------------------------------------------------------------
    def run_tasks(
        self, rt: Scheduler, inputs: KmeansProblem, param: float
    ) -> np.ndarray:
        points = inputs.points
        centroids = inputs.initial_centroids
        labels = np.zeros(self.n_points, dtype=np.int64)
        rt.init_group(self.GROUP, ratio=param)
        cost = kmeans_chunk_cost(self.chunk, self.k, self.dims)
        threshold = self.n_points / CONVERGENCE_DIVISOR

        for _ in range(MAX_ITERATIONS):
            tasks = [
                rt.spawn(
                    assign_chunk_accurate,
                    points,
                    centroids,
                    labels,
                    lo,
                    hi,
                    significance=UNIFORM_SIGNIFICANCE,
                    approxfun=assign_chunk_approx,
                    label=self.GROUP,
                    cost=cost,
                )
                for lo, hi in self._chunks()
            ]
            rt.taskwait(label=self.GROUP)

            # "Only accurate results are considered when evaluating the
            # convergence criteria" — and, to keep degradation graceful,
            # only accurate partial sums feed the centroid update (the
            # accurate chunks are an unbiased subsample of the points;
            # approximate chunks merely refresh their labels cheaply).
            sums = np.zeros_like(centroids)
            counts = np.zeros(self.k, dtype=np.int64)
            moved_accurate = 0
            for t in tasks:
                s, c, moved = t.result
                if t.decision is ExecutionKind.ACCURATE:
                    sums += s
                    counts += c
                    moved_accurate += moved
            nonzero = counts > 0
            centroids = centroids.copy()
            centroids[nonzero] = sums[nonzero] / counts[nonzero, None]

            if moved_accurate < threshold:
                break
        return centroids

    def run_reference(self, inputs: KmeansProblem) -> np.ndarray:
        """Plain accurate k-means with the same convergence rule."""
        points = inputs.points
        centroids = inputs.initial_centroids
        labels = np.zeros(self.n_points, dtype=np.int64)
        threshold = self.n_points / CONVERGENCE_DIVISOR
        for _ in range(MAX_ITERATIONS):
            sums = np.zeros_like(centroids)
            counts = np.zeros(self.k, dtype=np.int64)
            moved_total = 0
            for lo, hi in self._chunks():
                s, c, moved = assign_chunk_accurate(
                    points, centroids, labels, lo, hi
                )
                sums += s
                counts += c
                moved_total += moved
            nonzero = counts > 0
            centroids = centroids.copy()
            centroids[nonzero] = sums[nonzero] / counts[nonzero, None]
            if moved_total < threshold:
                break
        return centroids

    def run_perforated(
        self, rt: Scheduler, inputs: KmeansProblem, param: float
    ) -> np.ndarray:
        """Perforated k-means: only ``param`` of the chunks are
        (accurately) processed each iteration; the rest keep stale
        assignments and do not contribute to the update or convergence."""
        points = inputs.points
        centroids = inputs.initial_centroids
        labels = np.zeros(self.n_points, dtype=np.int64)
        chunks = self._chunks()
        kept = [
            chunks[int(j)]
            for j in perforated_indices(len(chunks), param, scheme="stride")
        ]
        kept_points = sum(hi - lo for lo, hi in kept)
        threshold = max(kept_points, 1) / CONVERGENCE_DIVISOR
        rt.init_group(self.GROUP, ratio=1.0)
        cost = kmeans_chunk_cost(self.chunk, self.k, self.dims)

        for _ in range(MAX_ITERATIONS):
            tasks = [
                rt.spawn(
                    assign_chunk_accurate,
                    points,
                    centroids,
                    labels,
                    lo,
                    hi,
                    significance=1.0,
                    label=self.GROUP,
                    cost=cost,
                )
                for lo, hi in kept
            ]
            rt.taskwait(label=self.GROUP)
            sums = np.zeros_like(centroids)
            counts = np.zeros(self.k, dtype=np.int64)
            moved_total = 0
            for t in tasks:
                s, c, moved = t.result
                sums += s
                counts += c
                moved_total += moved
            nonzero = counts > 0
            centroids = centroids.copy()
            centroids[nonzero] = sums[nonzero] / counts[nonzero, None]
            if moved_total < threshold:
                break
        return centroids

    def quality(self, reference, output) -> QualityValue:
        """Relative error of the clustering objective (inertia)."""
        ref_val = np.asarray([inertia(self._points_cache, reference)])
        out_val = np.asarray([inertia(self._points_cache, output)])
        return QualityValue.from_relative_error(ref_val, out_val)

    # quality() needs the points; build_input stashes them here.
    _points_cache: np.ndarray = np.empty((0, 0))
