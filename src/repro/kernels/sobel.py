"""Sobel edge detection — the paper's running example (Listing 1).

One task computes one row of the output image.  The accurate body
evaluates the full 3x3 Sobel stencil and the exact gradient magnitude
``sqrt(gx^2 + gy^2)``; the approximate body "uses a lightweight Sobel
stencil with just 2/3 of the filter taps [and] substitutes the costly
formula with its approximate counterpart |gx| + |gy|" (section 4.1).

Significance is assigned round-robin, ``(i % 9 + 1) / 10``, so that
"approximated pixels are uniformly spread throughout the output image"
and the special values 0.0/1.0 are avoided (Listing 1, line 53).

Table 1 row: approximate (A); degrees Mild/Medium/Aggressive =
80% / 30% / 0% accurate tasks; quality metric PSNR.
"""

from __future__ import annotations

import numpy as np

from ..perforation import perforated_indices
from ..quality.images import synthetic_image
from ..quality.metrics import QualityValue
from ..runtime.scheduler import Scheduler
from ..runtime.task import TaskCost, ref
from .base import Benchmark, Degree, register

__all__ = [
    "sobel_row_accurate",
    "sobel_row_approx",
    "sobel_row_value",
    "sobel_row_value_approx",
    "sobel_reference",
    "sobel_row_significance",
    "sobel_row_cost",
    "SobelBenchmark",
]

#: Work units per output pixel.  The accurate body of Listing 1 calls
#: ``pow()`` twice and ``sqrt()`` once per pixel — library calls of
#: roughly 40 simple ops each on the paper's testbed — plus 12 loads,
#: 8 add/sub and 4 multiplies for the stencils.
ACCURATE_OPS_PER_PIXEL = 144.0
#: Approximate body: 8 loads, 6 add/sub, 2 mul, abs and clamp — the
#: whole point of substituting ``|gx| + |gy|`` for ``sqrt(pow+pow)``.
APPROX_OPS_PER_PIXEL = 16.0


def sobel_row_accurate(res: np.ndarray, img: np.ndarray, i: int) -> None:
    """Full-precision Sobel for output row ``i`` (vectorized over j).

    Mirrors ``sbl_task`` of Listing 1: 3x3 X and Y stencils, gradient
    magnitude ``sqrt(gx^2+gy^2)`` clamped to 255.
    """
    a = img.astype(np.int32)
    top, mid, bot = a[i - 1], a[i], a[i + 1]
    gx = (
        top[:-2] + 2 * mid[:-2] + bot[:-2]
        - top[2:] - 2 * mid[2:] - bot[2:]
    )
    gy = (
        bot[:-2] + 2 * bot[1:-1] + bot[2:]
        - top[:-2] - 2 * top[1:-1] - top[2:]
    )
    p = np.sqrt(gx.astype(np.float64) ** 2 + gy.astype(np.float64) ** 2)
    res[i, 1:-1] = np.minimum(p, 255.0).astype(np.uint8)


def sobel_row_approx(res: np.ndarray, img: np.ndarray, i: int) -> None:
    """Lightweight Sobel for row ``i``.

    Mirrors ``sbl_task_appr``: the ``(y-1, x-1)`` and ``(y-1, x+1)``
    taps are omitted from each stencil (2/3 of the taps remain) and the
    magnitude becomes ``|gx + gy|``.
    """
    a = img.astype(np.int32)
    top, mid, bot = a[i - 1], a[i], a[i + 1]
    gx = 2 * mid[:-2] + bot[:-2] - 2 * mid[2:] - bot[2:]
    gy = 2 * bot[1:-1] + bot[2:] - 2 * top[1:-1] - top[2:]
    p = np.abs(gx + gy)
    res[i, 1:-1] = np.minimum(p, 255).astype(np.uint8)


def sobel_row_value(window: np.ndarray, i: int) -> np.ndarray:
    """Accurate Sobel of one row as a returned value.

    ``window`` is the three-row image slice centred on the original
    row ``i`` (``i`` rides along for the significance clause only), so
    each task marshals O(width) data across process boundaries — not
    the whole image — and a three-row scratch buffer reproduces the
    row exactly.  The value form (no output mutation) is what the
    serve layer and the compile tier's specialized chunk loops run.
    """
    res = np.zeros((3, window.shape[1]), dtype=window.dtype)
    sobel_row_accurate(res, window, 1)
    return res[1]


def sobel_row_value_approx(window: np.ndarray, i: int) -> np.ndarray:
    res = np.zeros((3, window.shape[1]), dtype=window.dtype)
    sobel_row_approx(res, window, 1)
    return res[1]


def sobel_reference(img: np.ndarray) -> np.ndarray:
    """Whole-image accurate Sobel (the quality baseline)."""
    res = np.zeros_like(img)
    for i in range(1, img.shape[0] - 1):
        sobel_row_accurate(res, img, i)
    return res


def sobel_row_significance(i: int) -> float:
    """Listing 1 line 53: ``(i % 9 + 1) / 10.0``."""
    return (i % 9 + 1) / 10.0


def sobel_row_cost(width: int) -> TaskCost:
    """Analytic work for one row task."""
    inner = max(width - 2, 0)
    return TaskCost(
        accurate=inner * ACCURATE_OPS_PER_PIXEL,
        approximate=inner * APPROX_OPS_PER_PIXEL,
    )


@register
class SobelBenchmark(Benchmark):
    """Sobel ported to the significance programming model."""

    name = "Sobel"
    approx_mode = "A"
    quality_metric = "PSNR"
    degrees = {
        Degree.MILD: 0.80,
        Degree.MEDIUM: 0.30,
        Degree.AGGRESSIVE: 0.0,
    }

    GROUP = "sobel"

    def __init__(self, small: bool = False) -> None:
        super().__init__(small)
        self.height = 64 if small else 512
        self.width = 64 if small else 512

    def build_input(self, seed: int = 2015) -> np.ndarray:
        return synthetic_image(self.height, self.width, seed)

    def run_tasks(
        self, rt: Scheduler, inputs: np.ndarray, param: float
    ) -> np.ndarray:
        if getattr(rt, "specializer", None) is not None:
            return self._run_specialized(rt, inputs, param)
        img = inputs
        res = np.zeros_like(img)
        rt.init_group(self.GROUP, ratio=param)
        cost = sobel_row_cost(img.shape[1])
        for i in range(1, img.shape[0] - 1):
            rt.spawn(
                sobel_row_accurate,
                res,
                img,
                i,
                significance=sobel_row_significance(i),
                approxfun=sobel_row_approx,
                label=self.GROUP,
                in_=[img],
                out=[ref(res, region=i)],
                cost=cost,
            )
        rt.taskwait(label=self.GROUP)
        return res

    def _run_specialized(
        self, rt: Scheduler, inputs: np.ndarray, param: float
    ) -> np.ndarray:
        """Compile-tier fast path (``RuntimeConfig.compile``).

        The per-row significance decision is folded once at
        ``ratio=param`` with GTB Max-Buffer semantics, and the rows
        execute as a handful of branch-free chunk tasks over the
        value-returning row bodies — rows are disjoint, so the
        dataflow clauses of the interpreted loop reduce to the one
        group barrier.
        """
        img = inputs
        res = np.zeros_like(img)
        rows = range(1, img.shape[0] - 1)
        plan = rt.specializer.specialize(
            self.GROUP,
            sobel_row_value,
            [(img[i - 1 : i + 2], i) for i in rows],
            significance=lambda window, i: sobel_row_significance(i),
            approxfun=sobel_row_value_approx,
            cost=sobel_row_cost(img.shape[1]),
            ratio=param,
            n_chunks=rt.config.n_workers,
        )
        rt.init_group(self.GROUP, ratio=param)
        tasks = rt.spawn_specialized(plan, label=self.GROUP)
        rt.taskwait(label=self.GROUP)
        for i, row in zip(rows, plan.gather([t.result for t in tasks])):
            if row is not None:
                res[i] = row
        return res

    def run_reference(self, inputs: np.ndarray) -> np.ndarray:
        return sobel_reference(inputs)

    def run_perforated(
        self, rt: Scheduler, inputs: np.ndarray, param: float
    ) -> np.ndarray:
        """Blind loop perforation over the row loop.

        Keeps ``param * rows`` iterations (the same number of tasks the
        significance runtime executes accurately); dropped rows keep the
        output's initialization value — exactly what perforating the row
        loop of the C code does.
        """
        img = inputs
        res = np.zeros_like(img)
        rows = img.shape[0] - 2
        cost = sobel_row_cost(img.shape[1])
        rt.init_group(self.GROUP, ratio=1.0)
        for r in perforated_indices(rows, param, scheme="stride"):
            i = int(r) + 1
            rt.spawn(
                sobel_row_accurate,
                res,
                img,
                i,
                significance=1.0,
                label=self.GROUP,
                in_=[img],
                out=[ref(res, region=i)],
                cost=cost,
            )
        rt.taskwait(label=self.GROUP)
        return res

    def quality(self, reference, output) -> QualityValue:
        return QualityValue.from_psnr(reference, output)
