"""Monte Carlo PDE boundary estimation — Table 1 row "MC".

"MC applies a Monte Carlo approach to estimate the boundary of a
subdomain within a larger partial differential equation (PDE) domain,
by performing random walks from points of the subdomain boundary to the
boundary of the initial domain" (section 4.1) — the probabilistic
representation of the harmonic measure behind the cited
hybrid-numerical PDE solvers [Vavalis & Sarailidis]: for Laplace's
equation, ``u(p) = E[g(exit point of a random walk from p)]``.

Concrete instance: the outer domain is the unit square with Dirichlet
data ``g(x, y) = x^2 - y^2`` (harmonic, so the true solution is known);
the subdomain is the centered square ``[1/4, 3/4]^2``; one task
estimates ``u`` at one subdomain-boundary point from a batch of
walk-on-spheres random walks (each step jumps to a uniformly random
point of the largest boundary-inscribed circle — the standard
grid-free walk for Laplace problems, converging in O(log 1/eps) steps).

Approximation (Table 1: "D, A") combines both mechanisms the paper
names: the approximate body *drops a percentage of the random walks*
(half of them) and uses *"a modified, more lightweight methodology ...
to decide how far from the current location the next step of a random
walk should be"* — a much coarser stopping band near the boundary, so
walks terminate in a fraction of the steps at the price of a biased
exit location.

Significance is assigned round-robin over boundary points (like Sobel),
spreading approximation error uniformly along the subdomain boundary;
this matches Table 2, which reports (unlike Kmeans/Jacobi) nonzero LQH
significance inversions for MC — only possible with non-uniform
significance.
"""

from __future__ import annotations

import numpy as np

from ..quality.metrics import QualityValue
from ..runtime.scheduler import Scheduler
from ..runtime.task import TaskCost, ref
from .base import Benchmark, Degree, register

__all__ = [
    "boundary_g",
    "true_solution",
    "subdomain_boundary_points",
    "walk_on_spheres_batch",
    "mc_point_accurate",
    "mc_point_approx",
    "mc_cost",
    "McBenchmark",
]

#: Stopping band: a walk "reaches the boundary" within this distance.
EPS_ACCURATE = 1e-4
EPS_APPROX = 5e-2
#: Fraction of walks the approximate body keeps.
APPROX_WALK_KEEP = 0.5
#: Work units per walk-on-spheres step (RNG, trig, distance query).
OPS_PER_STEP = 40.0
#: Hard safety bound on walk length.
MAX_STEPS = 100_000


def boundary_g(points: np.ndarray) -> np.ndarray:
    """Dirichlet data on the outer boundary: ``g = x^2 - y^2``."""
    p = np.atleast_2d(points)
    return p[:, 0] ** 2 - p[:, 1] ** 2


def true_solution(points: np.ndarray) -> np.ndarray:
    """Interior values (``g`` is harmonic, so ``u == g`` inside too)."""
    return boundary_g(points)


def subdomain_boundary_points(m: int) -> np.ndarray:
    """``m`` points evenly spaced along the boundary of [1/4, 3/4]^2."""
    if m < 4:
        raise ValueError(f"need at least 4 boundary points, got {m}")
    t = np.arange(m, dtype=np.float64) / m * 4.0  # perimeter parameter
    pts = np.empty((m, 2))
    side = t.astype(int)
    frac = t - side
    lo, hi = 0.25, 0.75
    span = hi - lo
    pts[side == 0] = np.c_[
        lo + span * frac[side == 0], np.full((side == 0).sum(), lo)
    ]
    pts[side == 1] = np.c_[
        np.full((side == 1).sum(), hi), lo + span * frac[side == 1]
    ]
    pts[side == 2] = np.c_[
        hi - span * frac[side == 2], np.full((side == 2).sum(), hi)
    ]
    pts[side == 3] = np.c_[
        np.full((side == 3).sum(), lo), hi - span * frac[side == 3]
    ]
    return pts


def _dist_to_boundary(pos: np.ndarray) -> np.ndarray:
    """Distance of interior points to the unit-square boundary."""
    return np.minimum(
        np.minimum(pos[:, 0], 1.0 - pos[:, 0]),
        np.minimum(pos[:, 1], 1.0 - pos[:, 1]),
    )


def walk_on_spheres_batch(
    point: np.ndarray, n_walks: int, eps: float, seed: int
) -> float:
    """Mean boundary value over ``n_walks`` walk-on-spheres paths.

    Each step jumps from the current location to a uniform random point
    on the circle of radius equal to the distance to the boundary; the
    walk stops once within ``eps`` of the boundary, where the nearest
    boundary point is sampled.  Vectorized over the batch.
    """
    if n_walks < 1:
        raise ValueError(f"need at least one walk, got {n_walks}")
    if not 0.0 < eps < 0.5:
        raise ValueError(f"stopping band {eps} out of range")
    rng = np.random.default_rng(seed)
    pos = np.tile(np.asarray(point, dtype=np.float64), (n_walks, 1))
    active = np.ones(n_walks, dtype=bool)
    total = 0.0
    steps = 0
    while active.any():
        steps += 1
        if steps > MAX_STEPS:  # pragma: no cover - safety net
            raise RuntimeError("walk-on-spheres failed to terminate")
        idx = np.flatnonzero(active)
        d = _dist_to_boundary(pos[idx])
        done = d <= eps
        if done.any():
            finished = idx[done]
            exit_pos = _project_to_boundary(pos[finished])
            total += float(boundary_g(exit_pos).sum())
            active[finished] = False
        live = idx[~done]
        if live.size:
            theta = rng.uniform(0.0, 2.0 * np.pi, size=live.size)
            radius = _dist_to_boundary(pos[live])
            pos[live, 0] += radius * np.cos(theta)
            pos[live, 1] += radius * np.sin(theta)
            # Numerical guard: keep strictly inside the closed square.
            np.clip(pos[live], 0.0, 1.0, out=pos[live])
    return total / n_walks


def _project_to_boundary(pos: np.ndarray) -> np.ndarray:
    """Snap each point to the nearest point of the unit-square boundary."""
    out = pos.copy()
    dists = np.stack(
        [pos[:, 0], 1.0 - pos[:, 0], pos[:, 1], 1.0 - pos[:, 1]], axis=1
    )
    side = np.argmin(dists, axis=1)
    out[side == 0, 0] = 0.0
    out[side == 1, 0] = 1.0
    out[side == 2, 1] = 0.0
    out[side == 3, 1] = 1.0
    return out


def mc_point_accurate(
    estimates: np.ndarray, points: np.ndarray, i: int, n_walks: int
) -> None:
    """Accurate task body: full walk batch, tight stopping band."""
    estimates[i] = walk_on_spheres_batch(
        points[i], n_walks, EPS_ACCURATE, seed=10_000 + i
    )


def mc_point_approx(
    estimates: np.ndarray, points: np.ndarray, i: int, n_walks: int
) -> None:
    """Approximate body: half the walks, 500x coarser stopping band."""
    kept = max(1, int(n_walks * APPROX_WALK_KEEP))
    estimates[i] = walk_on_spheres_batch(
        points[i], kept, EPS_APPROX, seed=10_000 + i
    )


def expected_steps(eps: float) -> float:
    """Walk-on-spheres converges in ``O(log 1/eps)`` steps in convex
    domains; the constant is modest (~2-3 for the unit square)."""
    return 3.0 * max(np.log(1.0 / eps), 1.0)


def mc_cost(n_walks: int) -> TaskCost:
    acc = n_walks * expected_steps(EPS_ACCURATE) * OPS_PER_STEP
    appr = (
        max(1, int(n_walks * APPROX_WALK_KEEP))
        * expected_steps(EPS_APPROX)
        * OPS_PER_STEP
    )
    return TaskCost(accurate=acc, approximate=appr)


@register
class McBenchmark(Benchmark):
    """MC ported to the significance programming model."""

    name = "MC"
    approx_mode = "D, A"
    quality_metric = "Rel.Err"
    degrees = {
        Degree.MILD: 1.00,
        Degree.MEDIUM: 0.80,
        Degree.AGGRESSIVE: 0.50,
    }

    GROUP = "mc"

    def __init__(self, small: bool = False) -> None:
        super().__init__(small)
        self.n_points = 32 if small else 512
        self.n_walks = 32 if small else 128

    def build_input(self, seed: int = 2015) -> np.ndarray:
        # The workload is fully determined by the boundary geometry; the
        # per-task RNG streams are seeded by point index.
        del seed
        return subdomain_boundary_points(self.n_points)

    def run_tasks(
        self, rt: Scheduler, inputs: np.ndarray, param: float
    ) -> np.ndarray:
        points = inputs
        estimates = np.zeros(len(points))
        rt.init_group(self.GROUP, ratio=param)
        cost = mc_cost(self.n_walks)
        for i in range(len(points)):
            rt.spawn(
                mc_point_accurate,
                estimates,
                points,
                i,
                self.n_walks,
                significance=(i % 9 + 1) / 10.0,
                approxfun=mc_point_approx,
                label=self.GROUP,
                in_=[points],
                out=[ref(estimates, region=i)],
                cost=cost,
            )
        rt.taskwait(label=self.GROUP)
        return estimates

    def run_reference(self, inputs: np.ndarray) -> np.ndarray:
        estimates = np.zeros(len(inputs))
        for i in range(len(inputs)):
            mc_point_accurate(estimates, inputs, i, self.n_walks)
        return estimates

    def run_perforated(
        self, rt: Scheduler, inputs: np.ndarray, param: float
    ) -> np.ndarray:
        """Blind perforation over boundary points.

        Dropped points keep estimate 0 — their walks simply never run,
        matching "the perforated version executes the same number of
        tasks as those executed accurately by our approach".
        """
        from ..perforation import perforated_indices

        points = inputs
        estimates = np.zeros(len(points))
        rt.init_group(self.GROUP, ratio=1.0)
        cost = mc_cost(self.n_walks)
        for j in perforated_indices(len(points), param, scheme="stride"):
            i = int(j)
            rt.spawn(
                mc_point_accurate,
                estimates,
                points,
                i,
                self.n_walks,
                significance=1.0,
                label=self.GROUP,
                in_=[points],
                out=[ref(estimates, region=i)],
                cost=cost,
            )
        rt.taskwait(label=self.GROUP)
        return estimates

    def quality(self, reference, output) -> QualityValue:
        return QualityValue.from_relative_error(reference, output)
