"""Benchmark framework: the shape shared by the six evaluation codes.

Table 1 of the paper defines, per benchmark: whether approximation means
an approximate task version ("A"), dropping ("D"), or both; the three
approximation degrees (Mild / Medium / Aggressive); and the quality
metric.  :class:`Benchmark` captures that contract so the experiment
harness can sweep every (benchmark × policy × degree) cell of Figure 2
uniformly:

* :meth:`Benchmark.build_input` — deterministic workload generation;
* :meth:`Benchmark.run_tasks` — spawn the annotated task graph into a
  runtime (the significance-programming-model port of the code);
* :meth:`Benchmark.run_reference` — plain accurate execution, no
  runtime (the quality baseline);
* :meth:`Benchmark.run_perforated` — the loop-perforation port, spawning
  only the kept tasks (time/energy baseline; ``None`` when perforation
  is inapplicable, as for Fluidanimate);
* :meth:`Benchmark.quality` — PSNR⁻¹ or relative error versus the
  reference output.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass
from typing import Any

from ..quality.metrics import QualityValue
from ..runtime.scheduler import Scheduler

__all__ = ["Degree", "DegreeSpec", "Benchmark", "register", "get_benchmark",
           "benchmark_names", "PerforationNotApplicable"]


class Degree(enum.Enum):
    """The paper's three approximation degrees."""

    MILD = "Mild"
    MEDIUM = "Medium"
    AGGRESSIVE = "Aggr"


@dataclass(frozen=True)
class DegreeSpec:
    """One row of Table 1 for one benchmark.

    ``param`` is the degree's knob value: the ratio of accurately
    executed tasks for most benchmarks, the convergence tolerance for
    Jacobi.
    """

    degree: Degree
    param: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.degree.value}({self.param:g})"


class PerforationNotApplicable(Exception):
    """Raised by benchmarks where perforation breaks the computation.

    "The perforation mechanism could not be applied on top of the
    Fluidanimate benchmark ... the physics of the fluid are violated"
    (section 4.2).
    """


class Benchmark(abc.ABC):
    """One evaluation code ported to the significance programming model."""

    #: Table 1 name.
    name: str = "?"
    #: "A", "D", or "D, A" — approximate and/or drop (Table 1).
    approx_mode: str = "A"
    #: Quality metric label: "PSNR" or "Rel.Err".
    quality_metric: str = "Rel.Err"
    #: Mild/Medium/Aggressive knob values (Table 1).
    degrees: dict[Degree, float] = {}

    def __init__(self, small: bool = False) -> None:
        """``small=True`` shrinks the workload for fast unit tests."""
        self.small = small

    # -- workload ------------------------------------------------------
    @abc.abstractmethod
    def build_input(self, seed: int = 2015) -> Any:
        """Deterministic input data for one experiment run."""

    # -- executions ------------------------------------------------------
    @abc.abstractmethod
    def run_tasks(self, rt: Scheduler, inputs: Any, param: float) -> Any:
        """Spawn the significance-annotated task graph; return output.

        Must be fully driven by ``param`` (the Table 1 knob): callers
        pick the policy and worker count through ``rt``.
        """

    @abc.abstractmethod
    def run_reference(self, inputs: Any) -> Any:
        """Fully accurate output computed without any runtime."""

    def run_perforated(
        self, rt: Scheduler, inputs: Any, param: float
    ) -> Any:
        """Loop-perforated execution (same kept-task count as ``param``).

        Default: not applicable.
        """
        raise PerforationNotApplicable(self.name)

    @property
    def perforation_applicable(self) -> bool:
        return type(self).run_perforated is not Benchmark.run_perforated

    def run_overhead_probe(self, rt: Scheduler, inputs: Any) -> Any:
        """The Figure 4 configuration: every task accurate, ratio 1.0.

        Paper section 4.2: "All tasks are created with the same
        significance and the ratio of tasks executed accurately is set
        to 100%, therefore eliminating any benefits of approximate
        execution."  The default runs :meth:`run_tasks` with ratio 1.0;
        benchmarks whose phase structure forces approximate ratios
        internally (Jacobi, Fluidanimate) override this.
        """
        return self.run_tasks(rt, inputs, 1.0)

    # -- quality -----------------------------------------------------------
    @abc.abstractmethod
    def quality(self, reference: Any, output: Any) -> QualityValue:
        """Lower-is-better quality of ``output`` against ``reference``."""

    # -- conveniences -------------------------------------------------------
    def degree_param(self, degree: Degree) -> float:
        try:
            return self.degrees[degree]
        except KeyError:
            raise KeyError(
                f"{self.name} has no {degree.value} degree configured"
            ) from None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Benchmark {self.name} ({'small' if self.small else 'full'})>"


_REGISTRY: dict[str, type[Benchmark]] = {}


def register(cls: type[Benchmark]) -> type[Benchmark]:
    """Class decorator adding a benchmark to the global registry."""
    key = cls.name.lower()
    if key in _REGISTRY and _REGISTRY[key] is not cls:
        raise ValueError(f"duplicate benchmark name {cls.name!r}")
    _REGISTRY[key] = cls
    return cls


def get_benchmark(name: str, small: bool = False) -> Benchmark:
    """Instantiate a registered benchmark by (case-insensitive) name."""
    try:
        cls = _REGISTRY[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; known: {sorted(_REGISTRY)}"
        ) from None
    return cls(small=small)


def benchmark_names() -> list[str]:
    """Registered benchmark names in Table 1 order (registration order)."""
    return [cls.name for cls in _REGISTRY.values()]
