"""Jacobi iterative solver — Table 1 row "Jacobi".

"Jacobi is an iterative solver of diagonally dominant systems of linear
equations.  We execute the first 5 iterations approximately, by dropping
the tasks (and computations) corresponding to the upper right and lower
left areas of the matrix.  This is not catastrophic, due to the fact
that the matrix is diagonally dominant and thus most of the information
is within a band near the diagonal.  All the following steps, until
convergence, are executed accurately, however at a higher target error
tolerance than the native execution" (section 4.1).

Port: each task updates one chunk of rows of ``x``.  The *approximate*
body drops the computations for matrix columns outside a band around
the diagonal (the "upper right and lower left areas" of the task's
rows); approximation is driven entirely by the taskwait ``ratio`` knob
(0.0 for the first five iterations, 1.0 afterwards), so all tasks share
one significance value — consistent with Table 2, where Jacobi shows
zero significance inversions.

The Table 1 degree knob is the convergence tolerance of the accurate
phase: Mild/Medium/Aggressive = 1e-4 / 1e-3 / 1e-2 (native 1e-5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..perforation import perforated_indices
from ..quality.metrics import QualityValue
from ..runtime.scheduler import Scheduler
from ..runtime.task import TaskCost
from .base import Benchmark, Degree, register

__all__ = [
    "JacobiProblem",
    "jacobi_chunk_accurate",
    "jacobi_chunk_banded",
    "jacobi_chunk_cost",
    "jacobi_reference",
    "JacobiBenchmark",
]

#: Iterations executed approximately at the start (paper: "the first 5").
APPROX_ITERATIONS = 5
#: Native convergence tolerance (the reference run).
NATIVE_TOL = 1e-5
#: Half-width of the retained band, as a fraction of n.
BAND_FRACTION = 1.0 / 8.0
#: Uniform significance for all row-chunk tasks.
UNIFORM_SIGNIFICANCE = 0.5
#: Work units per matrix entry touched (multiply-add + load).
OPS_PER_ENTRY = 3.0
MAX_ITERATIONS = 400


@dataclass
class JacobiProblem:
    """A strictly diagonally dominant dense system ``A x = b``."""

    a: np.ndarray
    b: np.ndarray

    @property
    def n(self) -> int:
        return self.a.shape[0]

    @classmethod
    def generate(cls, n: int, seed: int = 2015) -> "JacobiProblem":
        """Random off-diagonal entries; diagonal = row-sum + 1."""
        rng = np.random.default_rng(seed)
        a = rng.uniform(-1.0, 1.0, size=(n, n))
        np.fill_diagonal(a, 0.0)
        diag = np.abs(a).sum(axis=1) + 1.0
        a[np.diag_indices(n)] = diag
        b = rng.uniform(-1.0, 1.0, size=n)
        return cls(a=a, b=b)


def jacobi_chunk_accurate(
    x_new: np.ndarray,
    a: np.ndarray,
    b: np.ndarray,
    x: np.ndarray,
    lo: int,
    hi: int,
) -> None:
    """Accurate row-chunk update: full off-diagonal sweep.

    ``x_new[i] = (b[i] - sum_{j != i} a[i, j] x[j]) / a[i, i]``.
    """
    rows = a[lo:hi]
    sums = rows @ x
    diag = np.diagonal(a)[lo:hi]
    sums -= diag * x[lo:hi]
    x_new[lo:hi] = (b[lo:hi] - sums) / diag


def jacobi_chunk_banded(
    x_new: np.ndarray,
    a: np.ndarray,
    b: np.ndarray,
    x: np.ndarray,
    lo: int,
    hi: int,
) -> None:
    """Approximate body: drop columns outside the diagonal band.

    Only columns ``j`` with ``|j - i| <= w`` (``w = BAND_FRACTION * n``)
    contribute — the "upper right and lower left areas" of the task's
    rows are dropped.
    """
    n = a.shape[0]
    w = max(1, int(n * BAND_FRACTION))
    c0 = max(0, lo - w)
    c1 = min(n, hi + w)
    rows = a[lo:hi, c0:c1]
    sums = rows @ x[c0:c1]
    diag = np.diagonal(a)[lo:hi]
    sums -= diag * x[lo:hi]
    # Entries of the band window farther than w from each row's own
    # diagonal still sneak in at the chunk corners; that bounded excess
    # only *improves* the approximation and keeps the body vectorized.
    x_new[lo:hi] = (b[lo:hi] - sums) / diag


def jacobi_chunk_cost(chunk_rows: int, n: int) -> TaskCost:
    w = max(1, int(n * BAND_FRACTION))
    band_cols = min(n, 2 * w + chunk_rows)
    return TaskCost(
        accurate=chunk_rows * n * OPS_PER_ENTRY,
        approximate=chunk_rows * band_cols * OPS_PER_ENTRY,
    )


def jacobi_reference(
    problem: JacobiProblem, tol: float = NATIVE_TOL
) -> np.ndarray:
    """Plain full-accuracy Jacobi to tolerance ``tol``."""
    a, b = problem.a, problem.b
    diag = np.diagonal(a)
    r = a - np.diag(diag)
    x = np.zeros_like(b)
    for _ in range(MAX_ITERATIONS):
        x_new = (b - r @ x) / diag
        delta = np.linalg.norm(x_new - x) / max(np.linalg.norm(x_new), 1e-300)
        x = x_new
        if delta < tol:
            break
    return x


@register
class JacobiBenchmark(Benchmark):
    """Jacobi ported to the significance programming model."""

    name = "Jacobi"
    approx_mode = "D, A"
    quality_metric = "Rel.Err"
    #: Degree knob = convergence tolerance of the accurate phase.
    degrees = {
        Degree.MILD: 1e-4,
        Degree.MEDIUM: 1e-3,
        Degree.AGGRESSIVE: 1e-2,
    }

    GROUP = "jacobi"

    def __init__(self, small: bool = False) -> None:
        super().__init__(small)
        self.n = 128 if small else 512
        self.chunk = 16 if small else 32

    def build_input(self, seed: int = 2015) -> JacobiProblem:
        return JacobiProblem.generate(self.n, seed)

    def _chunks(self) -> list[tuple[int, int]]:
        return [
            (lo, min(lo + self.chunk, self.n))
            for lo in range(0, self.n, self.chunk)
        ]

    def _iterate(
        self,
        rt: Scheduler,
        problem: JacobiProblem,
        x: np.ndarray,
        ratio: float,
    ) -> np.ndarray:
        """One parallel Jacobi sweep under the given accurate ratio."""
        x_new = np.empty_like(x)
        rt.groups.get(self.GROUP).set_ratio(ratio)
        cost = jacobi_chunk_cost(self.chunk, self.n)
        for lo, hi in self._chunks():
            rt.spawn(
                jacobi_chunk_accurate,
                x_new,
                problem.a,
                problem.b,
                x,
                lo,
                hi,
                significance=UNIFORM_SIGNIFICANCE,
                approxfun=jacobi_chunk_banded,
                label=self.GROUP,
                cost=cost,
            )
        rt.taskwait(label=self.GROUP)
        return x_new

    def run_tasks(
        self, rt: Scheduler, inputs: JacobiProblem, param: float
    ) -> np.ndarray:
        tol = param
        rt.init_group(self.GROUP, ratio=0.0)
        x = np.zeros_like(inputs.b)
        for _ in range(APPROX_ITERATIONS):
            x = self._iterate(rt, inputs, x, ratio=0.0)
        for _ in range(MAX_ITERATIONS):
            x_new = self._iterate(rt, inputs, x, ratio=1.0)
            delta = np.linalg.norm(x_new - x) / max(
                np.linalg.norm(x_new), 1e-300
            )
            x = x_new
            if delta < tol:
                break
        return x

    def run_reference(self, inputs: JacobiProblem) -> np.ndarray:
        return jacobi_reference(inputs, tol=NATIVE_TOL)

    def run_overhead_probe(self, rt: Scheduler, inputs: JacobiProblem):
        """Figure 4 configuration: every sweep accurate (ratio 1.0).

        The benchmark's natural phase structure (five approximate
        sweeps) would contaminate a pure overhead measurement, so the
        probe runs the native tolerance with ratio 1.0 throughout.
        """
        rt.init_group(self.GROUP, ratio=1.0)
        x = np.zeros_like(inputs.b)
        for _ in range(APPROX_ITERATIONS):
            x = self._iterate(rt, inputs, x, ratio=1.0)
        for _ in range(MAX_ITERATIONS):
            x_new = self._iterate(rt, inputs, x, ratio=1.0)
            delta = np.linalg.norm(x_new - x) / max(
                np.linalg.norm(x_new), 1e-300
            )
            x = x_new
            if delta < NATIVE_TOL:
                break
        return x

    def run_perforated(
        self, rt: Scheduler, inputs: JacobiProblem, param: float
    ) -> np.ndarray:
        """Blind perforation: the first five sweeps update only a
        strided subset of row chunks (the same 2w/n fraction of the
        matrix the banded body touches); stale rows keep their previous
        value.  The accurate phase then runs to the degree tolerance."""
        tol = param
        keep = min(1.0, 2.0 * BAND_FRACTION + self.chunk / self.n)
        chunks = self._chunks()
        kept = [
            chunks[int(j)]
            for j in perforated_indices(len(chunks), keep, scheme="stride")
        ]
        cost = jacobi_chunk_cost(self.chunk, self.n)
        rt.init_group(self.GROUP, ratio=1.0)
        x = np.zeros_like(inputs.b)
        for _ in range(APPROX_ITERATIONS):
            x_new = x.copy()
            for lo, hi in kept:
                rt.spawn(
                    jacobi_chunk_accurate,
                    x_new,
                    inputs.a,
                    inputs.b,
                    x,
                    lo,
                    hi,
                    significance=1.0,
                    label=self.GROUP,
                    cost=cost,
                )
            rt.taskwait(label=self.GROUP)
            x = x_new
        for _ in range(MAX_ITERATIONS):
            x_new = self._iterate(rt, inputs, x, ratio=1.0)
            delta = np.linalg.norm(x_new - x) / max(
                np.linalg.norm(x_new), 1e-300
            )
            x = x_new
            if delta < tol:
                break
        return x

    def quality(self, reference, output) -> QualityValue:
        return QualityValue.from_relative_error(reference, output)
