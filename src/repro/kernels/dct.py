"""Discrete Cosine Transform (JPEG forward path) — Table 1 row "DCT".

"DCT is a module of the JPEG compression and decompression algorithm.
We assign higher significance to tasks that compute lower frequency
coefficients" (section 4.1).  Approximation means *dropping* (Table 1:
"D"): a dropped task leaves its frequency band zero, exactly like a
JPEG encoder that truncates the zigzag scan.

Decomposition: the image is split into 8x8 pixel blocks grouped into
strips of block-rows; each task computes one *zigzag diagonal band*
(all coefficients with ``u + v == k``) for every block of one strip.
Low-``k`` bands carry the visually dominant low spatial frequencies, so
significance decreases with ``k`` — "owing to the fact that the human
eye is more sensitive to lower spatial frequencies" (section 1).

Quality is the PSNR of the decompressed (dequantized + inverse DCT)
image against the output of the fully accurate pipeline.
"""

from __future__ import annotations

import numpy as np

from ..perforation import perforated_indices
from ..quality.images import synthetic_image
from ..quality.metrics import QualityValue
from ..runtime.scheduler import Scheduler
from ..runtime.task import TaskCost, ref
from .base import Benchmark, Degree, register

__all__ = [
    "BLOCK",
    "N_BANDS",
    "dct_matrix",
    "band_coefficients",
    "blockize",
    "unblockize",
    "dct_band_task",
    "dct_band_value",
    "band_cost",
    "reconstruct",
    "jpeg_quantization_table",
    "band_significance",
    "DctBenchmark",
]

#: JPEG block edge.
BLOCK = 8
#: Zigzag diagonals in an 8x8 block: u+v ranges over 0..14.
N_BANDS = 2 * BLOCK - 1

#: Work units per coefficient: an 8x8 inner product (64 MACs) plus
#: scaling and quantization.
OPS_PER_COEFF = 140.0


def dct_matrix() -> np.ndarray:
    """The 8x8 orthonormal DCT-II matrix ``C`` (rows are basis vectors)."""
    k = np.arange(BLOCK)
    n = np.arange(BLOCK)
    mat = np.cos(np.pi * (2 * n[None, :] + 1) * k[:, None] / (2 * BLOCK))
    mat *= np.sqrt(2.0 / BLOCK)
    mat[0] /= np.sqrt(2.0)
    return mat


_C = dct_matrix()


def jpeg_quantization_table() -> np.ndarray:
    """The standard JPEG luminance quantization table (Annex K)."""
    return np.array(
        [
            [16, 11, 10, 16, 24, 40, 51, 61],
            [12, 12, 14, 19, 26, 58, 60, 55],
            [14, 13, 16, 24, 40, 57, 69, 56],
            [14, 17, 22, 29, 51, 87, 80, 62],
            [18, 22, 37, 56, 68, 109, 103, 77],
            [24, 35, 55, 64, 81, 104, 113, 92],
            [49, 64, 78, 87, 103, 121, 120, 101],
            [72, 92, 95, 98, 112, 100, 103, 99],
        ],
        dtype=np.float64,
    )


_Q = jpeg_quantization_table()


def band_coefficients(k: int) -> list[tuple[int, int]]:
    """The ``(u, v)`` coefficient indices on zigzag diagonal ``k``."""
    if not 0 <= k < N_BANDS:
        raise ValueError(f"band {k} out of range 0..{N_BANDS - 1}")
    return [
        (u, k - u)
        for u in range(max(0, k - BLOCK + 1), min(k, BLOCK - 1) + 1)
    ]


def band_significance(k: int) -> float:
    """Monotonically decreasing in frequency, within (0, 1) exclusive.

    Band 0 (DC) gets 0.95, band 14 (highest frequencies) 0.05 — the
    special forced values 0.0/1.0 are deliberately avoided, as in the
    paper's Sobel example.
    """
    return 0.95 - 0.90 * k / (N_BANDS - 1)


def blockize(img: np.ndarray) -> np.ndarray:
    """(H, W) image -> (H//8 * W//8, 8, 8) block array, level-shifted."""
    h, w = img.shape
    if h % BLOCK or w % BLOCK:
        raise ValueError(f"image {h}x{w} not a multiple of {BLOCK}")
    a = img.astype(np.float64) - 128.0
    return (
        a.reshape(h // BLOCK, BLOCK, w // BLOCK, BLOCK)
        .transpose(0, 2, 1, 3)
        .reshape(-1, BLOCK, BLOCK)
    )


def unblockize(blocks: np.ndarray, h: int, w: int) -> np.ndarray:
    """Inverse of :func:`blockize` (adds the level shift back)."""
    a = (
        blocks.reshape(h // BLOCK, w // BLOCK, BLOCK, BLOCK)
        .transpose(0, 2, 1, 3)
        .reshape(h, w)
    )
    return np.clip(a + 128.0, 0, 255).astype(np.uint8)


def dct_band_task(
    coeffs: np.ndarray, blocks: np.ndarray, lo: int, hi: int, k: int
) -> None:
    """Compute quantized band-``k`` coefficients for blocks ``lo:hi``.

    Each coefficient ``(u, v)`` is the inner product of the block with
    the separable basis ``C[u] x C[v]``, divided by the quantization
    step — one frequency layer of a JPEG encoder.
    """
    chunk = blocks[lo:hi]
    for u, v in band_coefficients(k):
        basis = np.outer(_C[u], _C[v])
        vals = np.tensordot(chunk, basis, axes=([1, 2], [0, 1]))
        coeffs[lo:hi, u, v] = np.round(vals / _Q[u, v])


def dct_band_value(blocks: np.ndarray, k: int) -> np.ndarray:
    """Quantized band-``k`` coefficients for every block, as a value.

    The value-returning form of :func:`dct_band_task` (no output
    mutation): returns an ``(n_blocks, n_coeff)`` array in
    :func:`band_coefficients` order, so any execution backend — and
    the compile tier's specialized chunk loops — can run it and
    scatter the band back into the coefficient cube afterwards.
    """
    pairs = band_coefficients(k)
    out = np.empty((blocks.shape[0], len(pairs)))
    for j, (u, v) in enumerate(pairs):
        basis = np.outer(_C[u], _C[v])
        vals = np.tensordot(blocks, basis, axes=([1, 2], [0, 1]))
        out[:, j] = np.round(vals / _Q[u, v])
    return out


def reconstruct(coeffs: np.ndarray, h: int, w: int) -> np.ndarray:
    """JPEG decode: dequantize and inverse-DCT every block."""
    deq = coeffs * _Q[None, :, :]
    spatial = np.einsum("ku,nuv,vl->nkl", _C.T, deq, _C, optimize=True)
    return unblockize(spatial, h, w)


def band_cost(n_blocks: int, k: int) -> TaskCost:
    """Analytic work of one band task (drop semantics: approximate=0)."""
    n_coeff = len(band_coefficients(k))
    return TaskCost(accurate=n_blocks * n_coeff * OPS_PER_COEFF)


@register
class DctBenchmark(Benchmark):
    """JPEG DCT ported to the significance programming model."""

    name = "DCT"
    approx_mode = "D"
    quality_metric = "PSNR"
    degrees = {
        Degree.MILD: 0.80,
        Degree.MEDIUM: 0.40,
        Degree.AGGRESSIVE: 0.10,
    }

    GROUP = "dct"

    def __init__(self, small: bool = False) -> None:
        super().__init__(small)
        self.height = 64 if small else 1024
        self.width = 64 if small else 1024
        #: Block-rows per strip; many lightweight tasks (the paper notes
        #: DCT "creates many lightweight tasks, therefore stressing the
        #: runtime" — key to the Figure 4 overhead result).
        self.strip_block_rows = 1

    # ------------------------------------------------------------------
    def build_input(self, seed: int = 2015) -> np.ndarray:
        return synthetic_image(self.height, self.width, seed)

    def _strips(self) -> list[tuple[int, int]]:
        """(lo, hi) block index ranges, one per strip of block rows."""
        rows = self.height // BLOCK
        cols = self.width // BLOCK
        out = []
        for r0 in range(0, rows, self.strip_block_rows):
            r1 = min(r0 + self.strip_block_rows, rows)
            out.append((r0 * cols, r1 * cols))
        return out

    def run_tasks(
        self, rt: Scheduler, inputs: np.ndarray, param: float
    ) -> np.ndarray:
        img = inputs
        blocks = blockize(img)
        coeffs = np.zeros_like(blocks)
        rt.init_group(self.GROUP, ratio=param)
        for lo, hi in self._strips():
            for k in range(N_BANDS):
                rt.spawn(
                    dct_band_task,
                    coeffs,
                    blocks,
                    lo,
                    hi,
                    k,
                    significance=band_significance(k),
                    label=self.GROUP,
                    in_=[blocks],
                    out=[ref(coeffs, region=(lo, k))],
                    cost=band_cost(hi - lo, k),
                )
        rt.taskwait(label=self.GROUP)
        return reconstruct(coeffs, img.shape[0], img.shape[1])

    def run_reference(self, inputs: np.ndarray) -> np.ndarray:
        blocks = blockize(inputs)
        coeffs = np.zeros_like(blocks)
        n = blocks.shape[0]
        for k in range(N_BANDS):
            dct_band_task(coeffs, blocks, 0, n, k)
        return reconstruct(coeffs, inputs.shape[0], inputs.shape[1])

    def run_perforated(
        self, rt: Scheduler, inputs: np.ndarray, param: float
    ) -> np.ndarray:
        """Blind perforation over the (strip, band) task loop.

        Keeps the same number of tasks the runtime executes accurately,
        but chosen by loop position rather than frequency significance —
        so low-frequency bands get dropped too, which is why perforated
        DCT loses PSNR against the significance-aware runs.
        """
        img = inputs
        blocks = blockize(img)
        coeffs = np.zeros_like(blocks)
        work = [
            (lo, hi, k) for lo, hi in self._strips() for k in range(N_BANDS)
        ]
        rt.init_group(self.GROUP, ratio=1.0)
        for j in perforated_indices(len(work), param, scheme="stride"):
            lo, hi, k = work[int(j)]
            rt.spawn(
                dct_band_task,
                coeffs,
                blocks,
                lo,
                hi,
                k,
                significance=1.0,
                label=self.GROUP,
                in_=[blocks],
                out=[ref(coeffs, region=(lo, k))],
                cost=band_cost(hi - lo, k),
            )
        rt.taskwait(label=self.GROUP)
        return reconstruct(coeffs, img.shape[0], img.shape[1])

    def quality(self, reference, output) -> QualityValue:
        return QualityValue.from_psnr(reference, output)
