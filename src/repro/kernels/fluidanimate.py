"""Fluidanimate (PARSEC) — smoothed particle hydrodynamics, Table 1 row.

"Fluidanimate ... applies the smoothed particle hydrodynamics (SPH)
method to compute the movement of a fluid in consecutive time steps.
... Each time step is executed as either fully accurate or fully
approximate, by setting the ratio clause of the omp taskwait pragma to
either 0.0 or 1.0.  In the approximate execution, the new position of
each particle is estimated assuming it will move linearly, in the same
direction and with the same velocity as it did in the previous time
steps" (section 4.1).  "In order to ensure stability, it is necessary
to alternate accurate and approximate time steps" (section 4.2).

Port: a 2-D dam-break scene.  Particles are partitioned into fixed
index chunks; one task advances one chunk for one timestep.  The
accurate body runs real SPH — poly6 density, pressure (Tait-like
equation of state), viscosity, gravity, wall collisions; the
approximate body is the paper's ballistic extrapolation
(``x += v * dt``, velocity and density carried over).

The Table 1 degree is the fraction of *accurate timesteps*:
Mild/Medium/Aggressive = 50% / 25% / 12.5% (period 2 / 4 / 8).
Perforation is not applicable (section 4.2: dropping particle updates
"violates the physics of the fluid"), matching
:class:`~repro.kernels.base.PerforationNotApplicable`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..quality.metrics import QualityValue
from ..runtime.scheduler import Scheduler
from ..runtime.task import TaskCost
from .base import Benchmark, Degree, register

__all__ = [
    "FluidState",
    "sph_chunk_accurate",
    "sph_chunk_ballistic",
    "sph_chunk_cost",
    "fluid_reference",
    "FluidanimateBenchmark",
]

#: SPH smoothing radius (domain is the unit square).
SMOOTHING_H = 0.08
#: Timestep.
DT = 1.5e-3
#: Gravity (pulls the dam-break column down).
GRAVITY = np.array([0.0, -3.0])
#: Equation of state stiffness and rest density.
STIFFNESS = 0.08
REST_DENSITY = 1.0
#: Artificial viscosity coefficient.
VISCOSITY = 0.12
#: Wall restitution (velocity damping on bounce).
RESTITUTION = 0.4
#: Velocity clamp keeping the explicit integrator stable.
V_MAX = 1.5
#: Uniform significance for all chunk tasks.
UNIFORM_SIGNIFICANCE = 0.5
#: Work units per particle pair in the accurate body / per particle in
#: the ballistic body.
OPS_PER_PAIR = 14.0
OPS_BALLISTIC = 6.0


@dataclass
class FluidState:
    """Double-buffered particle state (positions, velocities, density)."""

    pos: np.ndarray  # (n, 2)
    vel: np.ndarray  # (n, 2)
    rho: np.ndarray  # (n,)

    def copy(self) -> "FluidState":
        return FluidState(self.pos.copy(), self.vel.copy(), self.rho.copy())

    @classmethod
    def dam_break(cls, n: int, seed: int = 2015) -> "FluidState":
        """A block of fluid at rest in the lower-left of the unit box."""
        rng = np.random.default_rng(seed)
        side = int(np.ceil(np.sqrt(n)))
        xs, ys = np.meshgrid(
            np.linspace(0.05, 0.45, side), np.linspace(0.05, 0.65, side)
        )
        pos = np.c_[xs.ravel()[:n], ys.ravel()[:n]]
        pos += rng.normal(0, 1e-3, pos.shape)  # break grid symmetry
        vel = np.zeros_like(pos)
        rho = np.full(n, REST_DENSITY)
        return cls(pos=pos, vel=vel, rho=rho)


def _poly6(r2: np.ndarray, h: float) -> np.ndarray:
    """Unnormalized poly6 kernel ``(h^2 - r^2)^3`` inside the support."""
    w = np.maximum(h * h - r2, 0.0)
    return w * w * w


def sph_chunk_accurate(
    new: FluidState, old: FluidState, lo: int, hi: int
) -> None:
    """Full SPH update for particles ``lo:hi``.

    Densities use the current positions of *all* particles; pressure
    forces use the neighbors' previous-step densities (standard lagged-
    density scheme, keeping one task wave per step).  Walls reflect with
    damping; velocities are clamped for explicit-integration stability.
    """
    h = SMOOTHING_H
    p = old.pos[lo:hi]  # (m, 2)
    diff = p[:, None, :] - old.pos[None, :, :]  # (m, n, 2)
    r2 = np.einsum("mnd,mnd->mn", diff, diff)
    w = _poly6(r2, h)
    rho = w.sum(axis=1)  # includes self-contribution
    new.rho[lo:hi] = rho

    # Tait-like pressures from lagged densities (self uses fresh rho).
    press_self = STIFFNESS * (rho - REST_DENSITY)
    press_other = STIFFNESS * (old.rho - REST_DENSITY)

    # Pressure force: symmetric gradient approximation over neighbors.
    r = np.sqrt(np.maximum(r2, 1e-12))
    inside = (r2 < h * h) & (r2 > 1e-12)
    grad_mag = np.where(inside, (h - r) ** 2 / r, 0.0)  # spiky-ish
    pair_press = 0.5 * (press_self[:, None] + press_other[None, :])
    f_press = -(grad_mag * pair_press)[:, :, None] * diff
    # Viscosity: pull toward neighborhood-average velocity.
    dvel = old.vel[None, :, :] - old.vel[lo:hi][:, None, :]
    f_visc = VISCOSITY * np.where(inside, h - r, 0.0)[:, :, None] * dvel

    acc = (f_press + f_visc).sum(axis=1) / np.maximum(
        rho[:, None], 1e-12
    ) + GRAVITY

    vel = old.vel[lo:hi] + DT * acc
    speed = np.linalg.norm(vel, axis=1, keepdims=True)
    vel = np.where(speed > V_MAX, vel * (V_MAX / speed), vel)
    pos = old.pos[lo:hi] + DT * vel

    # Wall collisions: clamp and reflect with damping.
    for d in range(2):
        low = pos[:, d] < 0.0
        high = pos[:, d] > 1.0
        pos[low, d] = 0.0
        pos[high, d] = 1.0
        vel[low | high, d] *= -RESTITUTION
    new.pos[lo:hi] = pos
    new.vel[lo:hi] = vel


def sph_chunk_ballistic(
    new: FluidState, old: FluidState, lo: int, hi: int
) -> None:
    """Approximate body: linear extrapolation, same direction/velocity."""
    pos = old.pos[lo:hi] + DT * old.vel[lo:hi]
    vel = old.vel[lo:hi].copy()
    for d in range(2):
        low = pos[:, d] < 0.0
        high = pos[:, d] > 1.0
        pos[low, d] = 0.0
        pos[high, d] = 1.0
        vel[low | high, d] *= -RESTITUTION
    new.pos[lo:hi] = pos
    new.vel[lo:hi] = vel
    new.rho[lo:hi] = old.rho[lo:hi]


def sph_chunk_cost(chunk: int, n: int) -> TaskCost:
    return TaskCost(
        accurate=chunk * n * OPS_PER_PAIR,
        approximate=chunk * OPS_BALLISTIC,
    )


def fluid_reference(
    state: FluidState, steps: int, chunk: int
) -> FluidState:
    """All-accurate evolution without a runtime (quality baseline)."""
    cur = state.copy()
    n = len(cur.pos)
    for _ in range(steps):
        nxt = cur.copy()
        for lo in range(0, n, chunk):
            sph_chunk_accurate(nxt, cur, lo, min(lo + chunk, n))
        cur = nxt
    return cur


@register
class FluidanimateBenchmark(Benchmark):
    """Fluidanimate ported to the significance programming model."""

    name = "Fluidanimate"
    approx_mode = "A"
    quality_metric = "Rel.Err"
    #: Fraction of accurate timesteps.
    degrees = {
        Degree.MILD: 0.50,
        Degree.MEDIUM: 0.25,
        Degree.AGGRESSIVE: 0.125,
    }

    GROUP = "fluid"

    def __init__(self, small: bool = False) -> None:
        super().__init__(small)
        self.n_particles = 256 if small else 1024
        self.steps = 16 if small else 48
        self.chunk = 32 if small else 64

    def build_input(self, seed: int = 2015) -> FluidState:
        return FluidState.dam_break(self.n_particles, seed)

    def _spawn_step(
        self, rt: Scheduler, cur: FluidState, ratio: float
    ) -> FluidState:
        nxt = cur.copy()
        n = self.n_particles
        cost = sph_chunk_cost(self.chunk, n)
        rt.groups.get(self.GROUP).set_ratio(ratio)
        for lo in range(0, n, self.chunk):
            rt.spawn(
                sph_chunk_accurate,
                nxt,
                cur,
                lo,
                min(lo + self.chunk, n),
                significance=UNIFORM_SIGNIFICANCE,
                approxfun=sph_chunk_ballistic,
                label=self.GROUP,
                cost=cost,
            )
        rt.taskwait(label=self.GROUP)
        return nxt

    def run_tasks(
        self, rt: Scheduler, inputs: FluidState, param: float
    ) -> FluidState:
        """Alternate accurate and approximate steps with period 1/param.

        "This is achieved in a trivial manner, by alternating the
        parameter of the ratio clause at taskbarrier pragmas between
        100% and the desired value in consecutive time steps."
        """
        if not 0.0 < param <= 1.0:
            raise ValueError(f"accurate-step fraction out of range: {param}")
        period = max(1, int(round(1.0 / param)))
        rt.init_group(self.GROUP, ratio=1.0)
        cur = inputs.copy()
        for step in range(self.steps):
            ratio = 1.0 if step % period == 0 else 0.0
            cur = self._spawn_step(rt, cur, ratio)
        return cur

    def run_reference(self, inputs: FluidState) -> FluidState:
        return fluid_reference(inputs, self.steps, self.chunk)

    def quality(self, reference, output) -> QualityValue:
        return QualityValue.from_relative_error(
            reference.pos, output.pos
        )
