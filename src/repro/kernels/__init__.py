"""The six evaluation benchmarks (paper Table 1), ported to the
significance programming model.

============  ======  ==========================  ==========
Benchmark     Mode    Degrees (Mild/Med/Aggr)      Quality
============  ======  ==========================  ==========
Sobel         A       80% / 30% / 0%              PSNR
DCT           D       80% / 40% / 10%             PSNR
MC            D, A    100% / 80% / 50%            Rel.Err
Kmeans        A       80% / 60% / 40%             Rel.Err
Jacobi        D, A    1e-4 / 1e-3 / 1e-2 (tol)    Rel.Err
Fluidanimate  A       50% / 25% / 12.5%           Rel.Err
============  ======  ==========================  ==========
"""

from .base import (
    Benchmark,
    Degree,
    DegreeSpec,
    PerforationNotApplicable,
    benchmark_names,
    get_benchmark,
    register,
)
from .dct import DctBenchmark
from .fluidanimate import FluidanimateBenchmark
from .jacobi import JacobiBenchmark
from .kmeans import KmeansBenchmark
from .mc import McBenchmark
from .sobel import SobelBenchmark

__all__ = [
    "Benchmark",
    "Degree",
    "DegreeSpec",
    "PerforationNotApplicable",
    "register",
    "get_benchmark",
    "benchmark_names",
    "SobelBenchmark",
    "DctBenchmark",
    "McBenchmark",
    "KmeansBenchmark",
    "JacobiBenchmark",
    "FluidanimateBenchmark",
]
