"""Output-quality evaluation: the yardstick of every approximation.

Paper section 4.1: quality is always judged against a fully accurate
execution of the same code.  The package provides the paper's two
metrics — PSNR (image benchmarks; reported inverted, lower-is-better,
as Figure 2 plots it) and relative error (numeric benchmarks) — plus
SSIM as a perceptual second opinion, all tagged uniformly through
:class:`~repro.quality.metrics.QualityValue` so harness tables and the
:class:`~repro.experiment.ResultSet` rows compare like with like.
The image helpers build Figure 1/3-style quadrant mosaics and the
deterministic synthetic input standing in for the paper's photograph.
"""

from .images import (
    quadrant_mosaic,
    quadrant_psnr,
    read_pgm,
    synthetic_image,
    write_pgm,
)
from .metrics import (
    QualityValue,
    inverse_psnr,
    mean_relative_error,
    mse,
    psnr,
    relative_error,
)
from .ssim import ssim

__all__ = [
    "mse",
    "psnr",
    "inverse_psnr",
    "relative_error",
    "mean_relative_error",
    "ssim",
    "QualityValue",
    "synthetic_image",
    "quadrant_mosaic",
    "quadrant_psnr",
    "write_pgm",
    "read_pgm",
]
