"""Quality metrics and image helpers (PSNR, relative error, mosaics)."""

from .images import (
    quadrant_mosaic,
    quadrant_psnr,
    read_pgm,
    synthetic_image,
    write_pgm,
)
from .metrics import (
    QualityValue,
    inverse_psnr,
    mean_relative_error,
    mse,
    psnr,
    relative_error,
)
from .ssim import ssim

__all__ = [
    "mse",
    "psnr",
    "inverse_psnr",
    "relative_error",
    "mean_relative_error",
    "ssim",
    "QualityValue",
    "synthetic_image",
    "quadrant_mosaic",
    "quadrant_psnr",
    "write_pgm",
    "read_pgm",
]
