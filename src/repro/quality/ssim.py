"""Structural similarity (SSIM) — a perceptual quality metric.

PSNR (the paper's image metric) is purely pixel-wise; SSIM [Wang et al.
2004] correlates better with perceived quality and is the standard
second opinion in approximate-computing evaluations.  Provided here so
users of the library can report both; the harness keeps PSNR for paper
fidelity.

Implementation: the common simplified SSIM with an 8x8 sliding window
(stride 4), uniform weighting, ``K1=0.01, K2=0.03``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ssim"]

_K1, _K2 = 0.01, 0.03


def _windows(a: np.ndarray, size: int, stride: int) -> np.ndarray:
    h, w = a.shape
    if h < size or w < size:
        raise ValueError(
            f"image {h}x{w} smaller than SSIM window {size}"
        )
    out = []
    for i in range(0, h - size + 1, stride):
        for j in range(0, w - size + 1, stride):
            out.append(a[i : i + size, j : j + size])
    return np.stack(out)


def ssim(
    reference,
    test,
    peak: float = 255.0,
    window: int = 8,
    stride: int = 4,
) -> float:
    """Mean SSIM over sliding windows; 1.0 means identical.

    Raises ``ValueError`` on shape mismatch or images smaller than the
    window.
    """
    r = np.asarray(reference, dtype=np.float64)
    t = np.asarray(test, dtype=np.float64)
    if r.shape != t.shape:
        raise ValueError(f"shape mismatch: {r.shape} vs {t.shape}")
    if peak <= 0:
        raise ValueError(f"peak must be positive, got {peak}")

    wr = _windows(r, window, stride)
    wt = _windows(t, window, stride)
    mu_r = wr.mean(axis=(1, 2))
    mu_t = wt.mean(axis=(1, 2))
    var_r = wr.var(axis=(1, 2))
    var_t = wt.var(axis=(1, 2))
    cov = ((wr - mu_r[:, None, None]) * (wt - mu_t[:, None, None])).mean(
        axis=(1, 2)
    )

    c1 = (_K1 * peak) ** 2
    c2 = (_K2 * peak) ** 2
    num = (2 * mu_r * mu_t + c1) * (2 * cov + c2)
    den = (mu_r**2 + mu_t**2 + c1) * (var_r + var_t + c2)
    return float(np.mean(num / den))
