"""Image helpers for the visual experiments (Figures 1 and 3).

The paper's Figure 1 composes the Sobel output from four quadrants, each
computed at a different approximation level; Figure 3 does the same for
loop perforation.  This module builds those quadrant mosaics, generates
the deterministic synthetic input image (the offline substitute for the
paper's photograph), and writes portable graymaps (PGM) so results can
be eyeballed without any imaging dependency.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

__all__ = [
    "synthetic_image",
    "quadrant_mosaic",
    "quadrant_psnr",
    "write_pgm",
    "read_pgm",
]


def synthetic_image(
    height: int = 512, width: int = 512, seed: int = 2015
) -> np.ndarray:
    """Deterministic grayscale test scene with edges at many scales.

    Mixes smooth gradients (low frequencies), rectangles and disks
    (sharp edges for the Sobel filter), concentric sine rings (mid
    frequencies) and mild noise — enough structure that edge detection
    and DCT compression behave like they do on natural images.
    """
    if height < 8 or width < 8:
        raise ValueError(f"image too small: {height}x{width}")
    rng = np.random.default_rng(seed)
    y, x = np.mgrid[0:height, 0:width].astype(np.float64)
    img = 60.0 + 80.0 * (x / width) + 40.0 * (y / height)

    # Sine rings centred off-middle.
    cy, cx = height * 0.4, width * 0.6
    r = np.hypot(y - cy, x - cx)
    img += 35.0 * np.sin(r / 6.0)

    # Rectangles and disks with crisp boundaries.
    img[height // 8 : height // 3, width // 10 : width // 4] += 70.0
    disk = (y - height * 0.7) ** 2 + (x - width * 0.3) ** 2 < (
        min(height, width) * 0.12
    ) ** 2
    img[disk] -= 60.0
    band = (x + 2 * y > 1.4 * width) & (x + 2 * y < 1.55 * width)
    img[band] += 50.0

    img += rng.normal(0.0, 2.0, size=img.shape)
    return np.clip(img, 0, 255).astype(np.uint8)


def quadrant_mosaic(quadrants: list[np.ndarray]) -> np.ndarray:
    """Assemble [top-left, top-right, bottom-left, bottom-right] images.

    All four quadrant images must be full-size outputs of the same
    shape; the mosaic copies each one's quadrant region, mirroring how
    Figure 1 displays "the upper left quadrant ... with no
    approximation, the upper right ... Mild" etc.
    """
    if len(quadrants) != 4:
        raise ValueError(f"need exactly 4 quadrants, got {len(quadrants)}")
    shape = quadrants[0].shape
    if any(q.shape != shape for q in quadrants):
        raise ValueError("quadrant images must share one shape")
    h, w = shape[:2]
    hh, hw = h // 2, w // 2
    out = np.zeros_like(quadrants[0])
    out[:hh, :hw] = quadrants[0][:hh, :hw]
    out[:hh, hw:] = quadrants[1][:hh, hw:]
    out[hh:, :hw] = quadrants[2][hh:, :hw]
    out[hh:, hw:] = quadrants[3][hh:, hw:]
    return out


def quadrant_psnr(
    reference: np.ndarray, mosaic: np.ndarray
) -> list[float]:
    """Per-quadrant PSNR of a mosaic against the accurate reference.

    Quantifies Figures 1/3: the paper shows the quadrants visually; the
    reproduction reports the PSNR of each quadrant region instead.
    """
    from .metrics import psnr

    h, w = reference.shape[:2]
    hh, hw = h // 2, w // 2
    regions = [
        (slice(0, hh), slice(0, hw)),
        (slice(0, hh), slice(hw, w)),
        (slice(hh, h), slice(0, hw)),
        (slice(hh, h), slice(hw, w)),
    ]
    return [psnr(reference[r], mosaic[r]) for r in regions]


def write_pgm(path: str | Path, img: np.ndarray) -> Path:
    """Write an 8-bit grayscale image as binary PGM (P5)."""
    arr = np.asarray(img)
    if arr.ndim != 2:
        raise ValueError(f"PGM needs a 2-D array, got shape {arr.shape}")
    arr = np.clip(arr, 0, 255).astype(np.uint8)
    p = Path(path)
    header = f"P5\n{arr.shape[1]} {arr.shape[0]}\n255\n".encode("ascii")
    p.write_bytes(header + arr.tobytes())
    return p


def read_pgm(path: str | Path) -> np.ndarray:
    """Read a binary PGM (P5) written by :func:`write_pgm`."""
    data = Path(path).read_bytes()
    if not data.startswith(b"P5"):
        raise ValueError("not a binary PGM (P5) file")
    parts = data.split(b"\n", 3)
    if len(parts) < 4:
        raise ValueError("truncated PGM header")
    width, height = (int(v) for v in parts[1].split())
    maxval = int(parts[2])
    if maxval != 255:
        raise ValueError(f"only 8-bit PGM supported, maxval={maxval}")
    pixels = np.frombuffer(parts[3], dtype=np.uint8, count=height * width)
    return pixels.reshape(height, width).copy()
