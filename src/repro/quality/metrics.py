"""Output-quality metrics (paper section 4.1).

"The quality of the final result is evaluated by comparing it to the
output produced by a fully accurate execution of the respective code.
For benchmarks involving image processing (DCT, Sobel), we use the peak
signal to noise ratio (PSNR) metric, whereas for MC, Kmeans, Jacobi and
Fluidanimate we use the relative error."

Figure 2 plots *lower-is-better* quality, i.e. ``PSNR^-1`` for the image
benchmarks and relative error (%) for the rest; both are provided here.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "mse",
    "psnr",
    "inverse_psnr",
    "relative_error",
    "mean_relative_error",
    "QualityValue",
]


def _as_float(a) -> np.ndarray:
    return np.asarray(a, dtype=np.float64)


def mse(reference, test) -> float:
    """Mean squared error between two arrays of identical shape."""
    r, t = _as_float(reference), _as_float(test)
    if r.shape != t.shape:
        raise ValueError(f"shape mismatch: {r.shape} vs {t.shape}")
    if r.size == 0:
        raise ValueError("cannot compute MSE of empty arrays")
    return float(np.mean((r - t) ** 2))


def psnr(reference, test, peak: float = 255.0) -> float:
    """Peak signal-to-noise ratio in dB; ``inf`` for identical inputs.

    ``peak`` is the dynamic range of the signal (255 for 8-bit images).
    """
    if peak <= 0:
        raise ValueError(f"peak must be positive, got {peak}")
    err = mse(reference, test)
    if err == 0.0:
        return math.inf
    return 10.0 * math.log10(peak * peak / err)


def inverse_psnr(reference, test, peak: float = 255.0) -> float:
    """``1 / PSNR`` — the lower-is-better image metric of Figure 2.

    Identical outputs give 0.0 (perfect quality).
    """
    p = psnr(reference, test, peak)
    if math.isinf(p):
        return 0.0
    if p <= 0:
        # PSNR <= 0 dB means noise power exceeds signal power; clamp the
        # inverse to a large sentinel rather than flipping sign.
        return math.inf
    return 1.0 / p


def relative_error(reference, test, eps: float = 1e-300) -> float:
    """L2-norm relative error ``||t - r|| / ||r||``.

    The scalar form the paper reports for MC/Kmeans/Jacobi/Fluidanimate.
    A zero reference with nonzero test yields ``inf``.
    """
    r, t = _as_float(reference), _as_float(test)
    if r.shape != t.shape:
        raise ValueError(f"shape mismatch: {r.shape} vs {t.shape}")
    num = float(np.linalg.norm((t - r).ravel()))
    den = float(np.linalg.norm(r.ravel()))
    if den < eps:
        return 0.0 if num < eps else math.inf
    return num / den


def mean_relative_error(reference, test, eps: float = 1e-12) -> float:
    """Mean elementwise ``|t - r| / max(|r|, eps)`` (robust variant)."""
    r, t = _as_float(reference), _as_float(test)
    if r.shape != t.shape:
        raise ValueError(f"shape mismatch: {r.shape} vs {t.shape}")
    if r.size == 0:
        raise ValueError("cannot compute error of empty arrays")
    denom = np.maximum(np.abs(r), eps)
    return float(np.mean(np.abs(t - r) / denom))


class QualityValue:
    """A tagged quality number, lower-is-better, as plotted in Figure 2.

    ``metric`` is ``"PSNR^-1"`` or ``"Rel.Err(%)"``; ``value`` carries the
    already-inverted/percentaged number so harness code can compare and
    print uniformly.
    """

    __slots__ = ("metric", "value")

    def __init__(self, metric: str, value: float) -> None:
        self.metric = metric
        self.value = float(value)

    @classmethod
    def from_psnr(cls, reference, test, peak: float = 255.0) -> "QualityValue":
        return cls("PSNR^-1", inverse_psnr(reference, test, peak))

    @classmethod
    def from_relative_error(cls, reference, test) -> "QualityValue":
        return cls("Rel.Err(%)", 100.0 * relative_error(reference, test))

    def __repr__(self) -> str:
        return f"QualityValue({self.metric}={self.value:.6g})"
