"""``repro.cluster`` — the sharded multi-worker serving layer.

One :class:`~repro.cluster.service.ClusterService` runs N serve shards
(each a full :class:`~repro.serve.server.TaskService`), routes jobs by
consistent hash (:mod:`repro.cluster.hashring`), shares one logical
approximate-result cache (:mod:`repro.cluster.cache`) and enforces
cluster-wide lifetime energy budgets through chunked quota leases
(:mod:`repro.cluster.ledger`).  ``fig-cluster``
(:mod:`repro.cluster.figure`) is the acceptance figure; the
``serve_cluster`` bench probe gates the scaling and ledger-parity
claims in CI.
"""

from .cache import CacheView, ShardedResultCache
from .figure import ClusterFigData, fig_cluster
from .hashring import HashRing, cache_key, job_key, stable_hash
from .ledger import EnergyLedger, LedgerAccount, LedgerLease
from .service import ClusterService, ClusterSpec, ShardWorker

__all__ = [
    "HashRing",
    "stable_hash",
    "job_key",
    "cache_key",
    "EnergyLedger",
    "LedgerAccount",
    "LedgerLease",
    "ShardedResultCache",
    "CacheView",
    "ClusterSpec",
    "ShardWorker",
    "ClusterService",
    "ClusterFigData",
    "fig_cluster",
]
