"""``fig-cluster``: scaling, ledger parity, and cross-shard isolation.

The cluster's acceptance figure, three phases:

1. **Scaling** — the same smoke workload (distinct-seed Sobel and
   Monte-Carlo jobs from two tenants) runs on 1, 4 and 8 shards; the
   cluster makespan is the *slowest shard's* engine clock.  On the
   simulated backend that clock is virtual seconds — deterministic and
   host-independent — which is what lets the ``serve_cluster`` bench
   probe gate ≥3x jobs/s at 4 shards and ≥5x at 8 without timing
   repeats.
2. **Ledger parity** — tenant A carries a ledger-accounted budget in
   every scaling run; its lifetime spend summed across all shards must
   match the single-shard figure within 2 % (the chunked lease/refill
   protocol must not create or lose Joules).
3. **Isolation** — the ``fig-serve`` two-tenant scenario replayed on a
   multi-shard cluster: A budgeted at 60 % of its solo price, B
   latency-sensitive and unmetered, jobs consistently hashed across
   shards.  B's shared-versus-solo p95 latency and quality must stay
   inside the same 5 % band that gates the single-service figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import RuntimeConfig
from ..harness.report import format_table
from ..serve.figure import ISOLATION_TOLERANCE, percentile
from ..serve.server import JobReport, JobRequest, TaskService
from .service import ClusterService, ClusterSpec

__all__ = [
    "ClusterFigData",
    "cluster_smoke_jobs",
    "run_cluster_scale",
    "fig_cluster",
]

#: Ledger-parity acceptance band: per-tenant cluster-wide spend versus
#: the single-shard figure.
PARITY_TOLERANCE = 0.02

#: Scaling-phase budget: large enough that tenant A's governor never
#: binds (every run executes the same work at ratio 1.0 — the parity
#: comparison isolates the *accounting*), yet every Joule still flows
#: through the cluster ledger's lease protocol.
SCALE_BUDGET_J = 1e6


def cluster_smoke_jobs(
    waves: int, *, small: bool = False
) -> list[JobRequest]:
    """The smoke workload: ``2 * waves`` distinct-seed jobs from two
    tenants (A: droppable Monte-Carlo batches, B: accurate Sobel)."""
    samples = 600 if small else 1200
    size = 64 if small else 96
    jobs: list[JobRequest] = []
    for w in range(waves):
        jobs.append(
            JobRequest(
                tenant="a",
                kernel="mc-pi",
                args={"blocks": 8, "samples": samples, "seed": 5000 + w},
            )
        )
        jobs.append(
            JobRequest(
                tenant="b",
                kernel="sobel",
                args={"size": size, "seed": 7000 + w},
            )
        )
    return jobs


def _scale_tenants(budget_j: float) -> tuple[str, str]:
    return (
        f"standard:name='a',budget_j={budget_j},max_pending=4096",
        "premium:name='b',max_pending=4096",
    )


def run_cluster_scale(
    shards: int,
    waves: int,
    *,
    engine: str = "simulated",
    n_workers: int = 16,
    small: bool = False,
    budget_j: float = SCALE_BUDGET_J,
    max_batch: int = 8,
) -> dict:
    """One scaling-phase run: the smoke workload on ``shards`` shards.

    Returns the deterministic figures the probe gates: the cluster
    makespan (slowest shard's engine clock), jobs served, and tenant
    A's ledger-settled lifetime spend.
    """
    config = RuntimeConfig(
        policy="gtb-max", n_workers=n_workers, engine=engine
    )
    jobs = cluster_smoke_jobs(waves, small=small)
    service = ClusterService(
        config,
        tenants=_scale_tenants(budget_j),
        cluster=ClusterSpec(shards=shards),
        max_batch=max_batch,
        compute_quality=False,
    )
    with service:
        reports = [service.submit(job) for job in jobs]
        while service.pending_jobs:
            service.flush()
        makespan = service.makespan_s
        spread = {
            w.index: w.service.tenants["a"].executed
            + w.service.tenants["b"].executed
            for w in service.shards
        }
    ok = sum(1 for r in reports if r.ok)
    return {
        "shards": shards,
        "jobs": len(jobs),
        "ok": ok,
        "makespan_s": makespan,
        "jobs_per_s": len(jobs) / makespan if makespan else 0.0,
        "a_spent_j": service.ledger.spent_j("a"),
        "spread": spread,
    }


@dataclass
class ClusterFigData:
    """Raw numbers of one fig-cluster run plus the rendered view."""

    engine: str
    n_workers: int
    shard_counts: tuple
    scale_runs: dict[int, dict] = field(default_factory=dict)
    iso_shards: int = 4
    a_budget_j: float = 0.0
    a_solo_energy_j: float = 0.0
    a_reports: list[JobReport] = field(default_factory=list)
    b_solo_reports: list[JobReport] = field(default_factory=list)
    b_shared_reports: list[JobReport] = field(default_factory=list)
    tenant_stats: dict = field(default_factory=dict)

    # -- scaling ----------------------------------------------------------
    @property
    def base_shards(self) -> int:
        return min(self.shard_counts)

    def speedup(self, shards: int) -> float:
        """Jobs/s at ``shards`` over the base (single-shard) run, on
        the deterministic virtual timeline."""
        base = self.scale_runs[self.base_shards]["makespan_s"]
        run = self.scale_runs[shards]["makespan_s"]
        return base / run if run else 0.0

    # -- ledger parity ----------------------------------------------------
    @property
    def parity_error(self) -> float:
        """Worst relative deviation of tenant A's cluster-wide spend
        from the single-shard ledger figure."""
        base = self.scale_runs[self.base_shards]["a_spent_j"]
        if base == 0.0:
            return 0.0
        return max(
            abs(run["a_spent_j"] - base) / base
            for run in self.scale_runs.values()
        )

    @property
    def parity_ok(self) -> bool:
        return self.parity_error <= PARITY_TOLERANCE

    # -- isolation --------------------------------------------------------
    @property
    def b_solo_p95_s(self) -> float:
        return percentile(
            [r.latency_s for r in self.b_solo_reports], 0.95
        )

    @property
    def b_shared_p95_s(self) -> float:
        return percentile(
            [r.latency_s for r in self.b_shared_reports], 0.95
        )

    @property
    def b_p95_delta(self) -> float:
        solo = self.b_solo_p95_s
        return (self.b_shared_p95_s - solo) / solo if solo else 0.0

    @property
    def b_quality_delta(self) -> float:
        def mean_quality(reports):
            scored = [
                r.quality for r in reports if r.quality is not None
            ]
            return sum(scored) / len(scored) if scored else 0.0

        return abs(
            mean_quality(self.b_shared_reports)
            - mean_quality(self.b_solo_reports)
        )

    @property
    def isolated(self) -> bool:
        """B within the fig-serve 5 % band, with its jobs (and A's)
        spread across every shard."""
        return (
            abs(self.b_p95_delta) <= ISOLATION_TOLERANCE
            and self.b_quality_delta <= ISOLATION_TOLERANCE
        )

    @property
    def a_mean_served_ratio(self) -> float:
        served = [
            r.ratio_served
            for r in self.a_reports
            if r.ratio_served is not None
        ]
        return sum(served) / len(served) if served else 0.0

    # -- rendering ---------------------------------------------------------
    def render(self) -> str:
        sections = []
        base = self.base_shards
        rows = []
        for n in self.shard_counts:
            run = self.scale_runs[n]
            rows.append(
                [
                    n,
                    run["jobs"],
                    f"{run['makespan_s']:.4g}",
                    f"{run['jobs_per_s']:.4g}",
                    f"{self.speedup(n):.2f}x",
                    f"{run['a_spent_j']:.6g}",
                ]
            )
        sections.append(
            format_table(
                [
                    "shards", "jobs", "makespan (s)", "jobs/s",
                    "speedup", "A spent (J)",
                ],
                rows,
                title=(
                    f"[fig-cluster] smoke workload on "
                    f"'{self.engine}' shards (virtual time, "
                    f"{self.n_workers} workers/shard)"
                ),
            )
        )
        parity = "PASS" if self.parity_ok else "FAIL"
        sections.append(
            f"ledger parity: worst cluster-vs-{base}-shard spend "
            f"deviation {self.parity_error:.3%} "
            f"(band {PARITY_TOLERANCE:.0%}) -> {parity}"
        )
        verdict = "PASS" if self.isolated else "FAIL"
        sections.append(
            f"isolation on {self.iso_shards} shards: B p95 delta "
            f"{self.b_p95_delta:+.2%}, quality delta "
            f"{self.b_quality_delta:.4g} "
            f"(band {ISOLATION_TOLERANCE:.0%}) -> {verdict}; "
            f"A served at mean ratio {self.a_mean_served_ratio:.2f} "
            f"under budget {self.a_budget_j:.4g} J "
            f"({self.a_solo_energy_j:.4g} J solo price)"
        )
        return "\n\n".join(sections)


def _b_request(size: int, wave: int, j: int) -> JobRequest:
    # Distinct seeds: interactive traffic never repeats, so the latency
    # measurement is never a cache artifact.
    return JobRequest(
        tenant="b",
        kernel="sobel",
        args={"size": size, "seed": 1000 + 17 * wave + j},
    )


def fig_cluster(
    small: bool = False,
    n_workers: int = 16,
    engine: str = "simulated",
    shard_counts: tuple = (1, 4, 8),
    iso_shards: int = 4,
    budget_frac: float = 0.6,
) -> ClusterFigData:
    """Run the three-phase cluster figure (see module docstring)."""
    waves = 80 if small else 120
    data = ClusterFigData(
        engine=engine,
        n_workers=n_workers,
        shard_counts=tuple(shard_counts),
        iso_shards=iso_shards,
    )

    # 1+2. Scaling runs (each carries the ledger-parity measurement).
    for shards in shard_counts:
        data.scale_runs[shards] = run_cluster_scale(
            shards,
            waves,
            engine=engine,
            n_workers=n_workers,
            small=small,
        )

    # 3. Isolation on a multi-shard cluster, fig-serve semantics.
    iso_waves = 10 if small else 20
    a_samples = 1000 if small else 4000
    b_size = 128 if small else 256
    a_args = [
        {"blocks": 8, "samples": a_samples, "seed": 2015 + w}
        for w in range(iso_waves)
    ]
    config = RuntimeConfig(
        policy="gtb-max", n_workers=n_workers, engine=engine
    )

    # Price A's stream: solo, unmetered, accurate (a single service —
    # energy on the virtual timeline is shard-count-independent).
    with TaskService(
        config, tenants=("standard:name='a'",), max_batch=4
    ) as solo_a:
        for args in a_args:
            solo_a.submit(
                JobRequest(tenant="a", kernel="mc-pi", args=args)
            )
        while solo_a.pending_jobs:
            solo_a.flush()
        data.a_solo_energy_j = solo_a.tenants["a"].spent_j
    data.a_budget_j = budget_frac * data.a_solo_energy_j

    def _cluster(tenants: tuple) -> ClusterService:
        return ClusterService(
            config,
            tenants=tenants,
            cluster=ClusterSpec(shards=iso_shards),
            max_batch=4,
        )

    # B's reference: solo on the cluster, streamed per wave.
    with _cluster(("premium:name='b'",)) as solo_b:
        for wave in range(iso_waves):
            for j in range(2):
                data.b_solo_reports.append(
                    solo_b.submit(_b_request(b_size, wave, j))
                )
            solo_b.flush()
        while solo_b.pending_jobs:
            solo_b.flush()

    # Shared run: A budgeted and queued up front, B streamed.
    shared = _cluster(
        (
            f"standard:name='a',budget_j={data.a_budget_j},"
            f"max_pending=4096",
            "premium:name='b'",
        )
    )
    with shared:
        for args in a_args:
            data.a_reports.append(
                shared.submit(
                    JobRequest(tenant="a", kernel="mc-pi", args=args)
                )
            )
        for wave in range(iso_waves):
            for j in range(2):
                data.b_shared_reports.append(
                    shared.submit(_b_request(b_size, wave, j))
                )
            shared.flush()
        while shared.pending_jobs:
            shared.flush()
        data.tenant_stats = {
            name: shared.tenant_summary(name)
            for name in ("a", "b")
        }
    return data
