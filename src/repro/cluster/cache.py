"""The cluster's approximate-result cache: one logical cache, N owners.

A degraded answer computed on shard 0 must serve a later identical
request routed anywhere — otherwise sharding would multiply the energy
spent producing approximations by the shard count.  The cluster gets
this with *ownership*, not replication: every ``(kernel, args-digest)``
has exactly one owning partition, chosen by the same consistent hash
the job router uses (:func:`repro.cluster.hashring.cache_key`), and all
shards read **through** to the owner.

* :class:`ShardedResultCache` — the cluster-level object: one
  :class:`~repro.serve.cache.ApproxResultCache` partition per shard,
  each behind its own lock (cross-shard read-throughs are the only
  contended path, and they contend per-partition, never globally).
* :class:`CacheView` — the per-shard facade handed to each shard's
  :class:`~repro.serve.server.TaskService` as its ``cache``.  It
  duck-types ``ApproxResultCache`` (``get`` / ``get_degraded`` /
  ``put`` / ``stats``), so the serve layer's admission and settle paths
  run unchanged; routing happens underneath.

Shard death: :meth:`ShardedResultCache.mark_dead` removes the shard
from the cache ring and forgets its partition (a dead shard's memory is
gone).  Keys it owned remap to clockwise successors — which have never
seen them — so the next lookup misses and the job **recomputes** rather
than erroring; an expected ``1/n`` of the working set pays that price,
the rest keeps hitting (``tests/cluster/test_cluster_cache.py``).
"""

from __future__ import annotations

import threading

from ..runtime.errors import ConfigError
from ..serve.cache import ApproxResultCache, CacheEntry, CacheStats, _ratio_key
from .hashring import HashRing, cache_key

__all__ = ["ShardedResultCache", "CacheView"]


class ShardedResultCache:
    """One logical result cache partitioned across serve shards."""

    def __init__(
        self,
        shards,
        *,
        capacity_per_shard: int = 128,
        replicas: int | None = None,
        metrics=None,
    ) -> None:
        shard_list = list(shards)
        if not shard_list:
            raise ConfigError("sharded cache needs at least one shard")
        ring_kwargs = {} if replicas is None else {"replicas": replicas}
        self.ring = HashRing(shard_list, **ring_kwargs)
        # One registry across partitions: the counters are per-thread
        # sharded, so all partitions incrementing the same series from
        # their worker threads merges cleanly on read.
        self._partitions: dict = {
            shard: ApproxResultCache(capacity_per_shard, metrics=metrics)
            for shard in shard_list
        }
        self._locks: dict = {
            shard: threading.Lock() for shard in shard_list
        }
        #: Shards removed by :meth:`mark_dead` (reporting only — the
        #: ring no longer routes to them).
        self.dead: set = set()
        #: Lookups that had to recompute because their old owner died
        #: and the successor had not seen the key yet show up as plain
        #: misses; this counts explicit mark_dead events instead.
        self.deaths = 0

    # -- membership ------------------------------------------------------
    @property
    def shards(self) -> list:
        return self.ring.shards

    def mark_dead(self, shard) -> None:
        """Shard death: drop its partition, remap its arcs (see module
        docstring).  Lookups that land on the successors simply miss."""
        self.ring.remove(shard)  # raises ConfigError if not a member
        if len(self.ring) == 0:
            # Put the shard back: a cluster cache with no owners can
            # serve nothing, which the caller surely did not mean.
            self.ring.add(shard)
            raise ConfigError(
                "cannot mark the last live cache shard dead"
            )
        with self._locks[shard]:
            self._partitions[shard].clear()
        self.dead.add(shard)
        self.deaths += 1

    def owner(self, kernel: str, digest: str):
        """The live shard owning ``(kernel, digest)``."""
        return self.ring.lookup(cache_key(kernel, digest))

    # -- routed operations ----------------------------------------------
    def get(
        self, kernel: str, digest: str, ratio: float
    ) -> CacheEntry | None:
        shard = self.owner(kernel, digest)
        with self._locks[shard]:
            return self._partitions[shard].get(kernel, digest, ratio)

    def get_degraded(
        self,
        kernel: str,
        digest: str,
        max_ratio: float,
        min_ratio: float = 0.0,
    ) -> CacheEntry | None:
        shard = self.owner(kernel, digest)
        with self._locks[shard]:
            return self._partitions[shard].get_degraded(
                kernel, digest, max_ratio, min_ratio
            )

    def put(
        self,
        kernel: str,
        digest: str,
        ratio: float,
        output,
        quality: float | None = None,
        energy_j: float = 0.0,
    ) -> CacheEntry:
        shard = self.owner(kernel, digest)
        with self._locks[shard]:
            return self._partitions[shard].put(
                kernel, digest, ratio, output,
                quality=quality, energy_j=energy_j,
            )

    # -- views and reporting ---------------------------------------------
    def view(self, shard) -> "CacheView":
        """The facade shard ``shard``'s TaskService uses as its cache."""
        if shard not in self._partitions:
            raise ConfigError(f"unknown cache shard {shard!r}")
        return CacheView(self, shard)

    def partition(self, shard) -> ApproxResultCache:
        """Direct partition access (tests and debugging)."""
        return self._partitions[shard]

    def __len__(self) -> int:
        return sum(len(p) for p in self._partitions.values())

    @property
    def stats(self) -> CacheStats:
        """Aggregate over partitions (traffic that *landed*, wherever
        it originated)."""
        total = CacheStats()
        for partition in self._partitions.values():
            s = partition.stats
            total.hits += s.hits
            total.degraded_hits += s.degraded_hits
            total.misses += s.misses
            total.evictions += s.evictions
            total.puts += s.puts
        return total

    def to_dict(self) -> dict:
        return {
            "shards": [str(s) for s in self.shards],
            "dead": sorted(str(s) for s in self.dead),
            "entries": len(self),
            "stats": self.stats.to_dict(),
            "per_shard": {
                str(shard): {
                    "entries": len(partition),
                    **partition.stats.to_dict(),
                }
                for shard, partition in sorted(
                    self._partitions.items(), key=lambda kv: str(kv[0])
                )
                if shard not in self.dead
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ShardedResultCache {len(self.ring)} shards "
            f"{len(self)} entries>"
        )


class CacheView:
    """Per-shard facade over the cluster cache (see module docstring).

    Keeps its own :class:`~repro.serve.cache.CacheStats` counting the
    traffic *this shard originated* — that is what the shard's
    ``TaskService.stats()`` reports — while the underlying partitions
    count the traffic that landed on them.
    """

    def __init__(self, cluster: ShardedResultCache, shard) -> None:
        self.cluster = cluster
        self.shard = shard
        self.stats = CacheStats()
        #: Read-throughs answered by a partition this shard does not
        #: own — the cross-shard traffic the probe reports.
        self.remote_hits = 0

    def _count(
        self, kernel: str, digest: str, entry, max_ratio: float
    ) -> None:
        if entry is None:
            self.stats.misses += 1
            return
        if entry.ratio >= _ratio_key(max_ratio):
            self.stats.hits += 1
        else:
            self.stats.degraded_hits += 1
        if self.cluster.owner(kernel, digest) != self.shard:
            self.remote_hits += 1

    # -- the ApproxResultCache duck type ---------------------------------
    def get(
        self, kernel: str, digest: str, ratio: float
    ) -> CacheEntry | None:
        entry = self.cluster.get(kernel, digest, ratio)
        self._count(kernel, digest, entry, ratio)
        return entry

    def get_degraded(
        self,
        kernel: str,
        digest: str,
        max_ratio: float,
        min_ratio: float = 0.0,
    ) -> CacheEntry | None:
        entry = self.cluster.get_degraded(
            kernel, digest, max_ratio, min_ratio
        )
        self._count(kernel, digest, entry, max_ratio)
        return entry

    def put(
        self,
        kernel: str,
        digest: str,
        ratio: float,
        output,
        quality: float | None = None,
        energy_j: float = 0.0,
    ) -> CacheEntry:
        self.stats.puts += 1
        return self.cluster.put(
            kernel, digest, ratio, output,
            quality=quality, energy_j=energy_j,
        )

    def __len__(self) -> int:
        return len(self.cluster)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<CacheView shard={self.shard!r}>"
