"""Consistent hashing: stable job/cache placement across serve shards.

The cluster routes every job — and owns every cache entry — by position
on a consistent-hash ring.  Each shard contributes ``replicas`` virtual
nodes; a key is served by the first virtual node clockwise from its hash
point.  Two properties make this the right router for a sharded service:

* **Stability** — the hash is content-derived (SHA-1 of the key bytes),
  never Python's salted ``hash()``, so the same key lands on the same
  shard in every process, on every host, across restarts.  That is what
  lets a frontend, a bench probe and a test agree on placement without
  talking to each other.
* **Bounded remapping** — adding or removing one shard remaps only the
  keys whose clockwise successor changed: an expected ``1/n`` of the key
  space, not all of it.  A shard joining (or dying) therefore invalidates
  one shard's worth of cache locality, not the whole cluster's
  (``tests/cluster/test_hashring.py`` pins the bound).

Placement keys: jobs route by ``(tenant, kernel, args-digest)`` so a
tenant's identical work coalesces in one shard's admission rounds; cache
entries are owned by ``(kernel, args-digest)`` — tenant-independent, so
a degraded answer computed for one tenant serves every tenant's
read-through lookups (see :mod:`repro.cluster.cache`).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable

from ..runtime.errors import ConfigError

__all__ = ["stable_hash", "job_key", "cache_key", "HashRing"]

#: Virtual nodes per shard.  128 keeps the max/mean load skew of a
#: handful of shards low enough that near-linear scaling survives
#: routing (the ``serve_cluster`` probe gates the end result).
DEFAULT_REPLICAS = 128


def stable_hash(key: str) -> int:
    """64-bit content hash of ``key`` — identical on every host.

    Python's builtin ``hash`` is salted per process
    (``PYTHONHASHSEED``); routing on it would shuffle the cluster every
    restart and unglue the cache from its owners.
    """
    digest = hashlib.sha1(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def job_key(tenant: str, kernel: str, digest: str) -> str:
    """Ring key of one job: identical work of one tenant co-locates."""
    return f"{tenant}\x1f{kernel}\x1f{digest}"


def cache_key(kernel: str, digest: str) -> str:
    """Ring key of one cache entry: tenant-independent ownership."""
    return f"{kernel}\x1f{digest}"


class HashRing:
    """A consistent-hash ring over shard identifiers.

    >>> ring = HashRing(range(4))
    >>> owner = ring.lookup(job_key("acme", "sobel", "ab12"))  # stable
    >>> ring.remove(owner)        # only that shard's keys remap
    """

    def __init__(
        self,
        shards: Iterable[int | str] = (),
        replicas: int = DEFAULT_REPLICAS,
    ) -> None:
        if replicas < 1:
            raise ConfigError(
                f"ring replicas must be >= 1, got {replicas}"
            )
        self.replicas = replicas
        self._points: list[int] = []
        self._owners: dict[int, int | str] = {}
        self._shards: set[int | str] = set()
        for shard in shards:
            self.add(shard)

    # -- membership ------------------------------------------------------
    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, shard: int | str) -> bool:
        return shard in self._shards

    @property
    def shards(self) -> list[int | str]:
        """Current members, sorted for deterministic iteration."""
        return sorted(self._shards, key=str)

    def add(self, shard: int | str) -> None:
        """Join one shard (``replicas`` virtual nodes)."""
        if shard in self._shards:
            raise ConfigError(f"shard {shard!r} is already on the ring")
        self._shards.add(shard)
        for r in range(self.replicas):
            point = stable_hash(f"{shard}\x1f#{r}")
            # SHA-1 collisions across distinct vnode labels are
            # astronomically unlikely; first-writer-wins keeps the ring
            # deterministic if one ever occurs.
            if point not in self._owners:
                self._owners[point] = shard
                bisect.insort(self._points, point)

    def remove(self, shard: int | str) -> None:
        """Leave (shard death): its arcs fall to clockwise successors."""
        if shard not in self._shards:
            raise ConfigError(f"shard {shard!r} is not on the ring")
        self._shards.discard(shard)
        self._points = [
            p for p in self._points if self._owners[p] != shard
        ]
        self._owners = {
            p: s for p, s in self._owners.items() if s != shard
        }

    # -- lookup ----------------------------------------------------------
    def lookup(self, key: str) -> int | str:
        """The shard owning ``key`` (first vnode clockwise)."""
        if not self._points:
            raise ConfigError("lookup on an empty hash ring")
        point = stable_hash(key)
        index = bisect.bisect_right(self._points, point)
        if index == len(self._points):
            index = 0  # wrap past 12 o'clock
        return self._owners[self._points[index]]

    def spread(self, keys: Iterable[str]) -> dict[int | str, int]:
        """Keys per shard — load-balance introspection for tests."""
        counts: dict[int | str, int] = {s: 0 for s in self._shards}
        for key in keys:
            counts[self.lookup(key)] += 1
        return counts

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<HashRing {len(self._shards)} shards x "
            f"{self.replicas} replicas>"
        )
