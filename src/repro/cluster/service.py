"""``ClusterService``: N serve shards behind one TaskService-shaped door.

PR 5's :class:`~repro.serve.server.TaskService` multiplexes every tenant
onto ONE shared scheduler behind a single service thread — the ROADMAP's
measured ceiling (~1.1k jobs/s, p95 drifting).  The cluster keeps that
core *unchanged* and multiplies it:

* **Shards** — each :class:`ShardWorker` owns a full ``TaskService``
  (its own :class:`~repro.runtime.scheduler.Scheduler`, engine and
  per-tenant governors) plus a dedicated single-thread executor; every
  touch of a shard's state marshals onto its thread, because schedulers
  are not thread-safe.  On the ``process`` backend each shard draws on
  its own tagged warm pool (:mod:`repro.runtime.pool`), so shard
  parallelism is process parallelism.
* **Routing** — jobs place by consistent hash of
  ``(tenant, kernel, args-digest)`` (:mod:`repro.cluster.hashring`):
  identical work coalesces in one shard's admission rounds exactly as
  it would on a single service, so sharding never *loses* the in-round
  dedupe or cache locality a single service had.
* **Cache** — one logical :class:`~repro.cluster.cache
  .ShardedResultCache`; each shard's service uses a read-through
  :class:`~repro.cluster.cache.CacheView`, so a degraded answer
  computed on shard 0 serves a later request routed anywhere.
* **Energy** — one :class:`~repro.cluster.ledger.EnergyLedger`; each
  shard's budgeted tenants hold :class:`~repro.cluster.ledger
  .LedgerLease` chunks and their governors steer against the quota
  actually leased (:meth:`~repro.tuning.governor.EnergyBudgetGovernor
  .retarget`), so lifetime budgets hold cluster-wide with no per-job
  global lock.

The service implements :class:`~repro.serve.ServiceProtocol`
(``submit`` / ``flush`` / ``pending_jobs`` / ``stats`` / ``close``) —
the explicit contract :class:`~repro.serve.server.LocalGateway` and the
TCP :class:`~repro.serve.server.ServeServer` are typed against — so a
gateway fronts a whole cluster without changing a line of gateway code.

Queue caps are per shard: a tenant with ``max_pending=64`` on a 4-shard
cluster may hold up to 256 queued jobs cluster-wide, 64 on any one
shard.  Budgets, by contrast, are cluster-wide — that is the ledger's
whole job.
"""

from __future__ import annotations

import itertools
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, fields

from ..config import RuntimeConfig
from ..obs import MetricsRegistry, SpanRecorder, obs_enabled, start_span
from ..registry import format_spec, parse_spec, register, resolve
from ..runtime.errors import ConfigError, RegistryError, SchedulerError
from ..serve.kernels import ServableKernel, get_servable
from ..serve.server import JobReport, JobRequest, TaskService
from ..serve.tenants import TenantSpec
from .cache import ShardedResultCache
from .hashring import DEFAULT_REPLICAS, HashRing, job_key
from .ledger import DEFAULT_CHUNK_FRAC, EnergyLedger

__all__ = ["ClusterSpec", "ShardWorker", "ClusterService"]

#: Registry names of the process-pool engine family (these shards get
#: per-shard tagged warm pools so they parallelize across OS processes).
_PROCESS_ENGINES = frozenset({"process", "procpool", "processes"})


@dataclass(frozen=True)
class ClusterSpec:
    """Shape of one serve cluster (plain data, registry family
    ``"cluster"``).

    Parameters
    ----------
    shards:
        Serve shards to run.  1 is a legal (degenerate) cluster.
    replicas:
        Virtual nodes per shard on the routing/cache ring.
    cache_capacity:
        LRU capacity of **each** cache partition (the logical cache
        holds ``shards * cache_capacity`` entries).
    lease_frac:
        Energy-lease chunk size as a fraction of a tenant's lifetime
        budget (see :mod:`repro.cluster.ledger`).
    """

    shards: int = 4
    replicas: int = DEFAULT_REPLICAS
    cache_capacity: int = 128
    lease_frac: float = DEFAULT_CHUNK_FRAC

    def __post_init__(self) -> None:
        if not isinstance(self.shards, int) or self.shards < 1:
            raise ConfigError(
                f"cluster shards must be an int >= 1, got {self.shards!r}"
            )
        if self.replicas < 1:
            raise ConfigError(
                f"cluster replicas must be >= 1, got {self.replicas}"
            )
        if self.cache_capacity < 1:
            raise ConfigError(
                f"cluster cache_capacity must be >= 1, "
                f"got {self.cache_capacity}"
            )
        if not 0.0 < self.lease_frac <= 1.0:
            raise ConfigError(
                f"cluster lease_frac must be in (0, 1], "
                f"got {self.lease_frac}"
            )


@register("cluster", "cluster", "default")
def make_cluster(**kwargs) -> ClusterSpec:
    """Registry factory: ``"cluster:shards=4,lease_frac=0.125"``."""
    known = {f.name for f in fields(ClusterSpec)}
    unknown = sorted(set(kwargs) - known)
    if unknown:
        raise ConfigError(
            f"unknown cluster spec option(s): {', '.join(unknown)} "
            f"(known: {', '.join(sorted(known))})"
        )
    return ClusterSpec(**kwargs)


def _resolve_cluster(spec) -> ClusterSpec:
    """Accept a ClusterSpec, a spec string, or a bare shard count."""
    if isinstance(spec, ClusterSpec):
        return spec
    if isinstance(spec, bool):
        raise ConfigError(f"cluster spec cannot be a bool ({spec!r})")
    if isinstance(spec, int):
        return ClusterSpec(shards=spec)
    cluster = resolve("cluster", spec)
    if not isinstance(cluster, ClusterSpec):
        raise ConfigError(
            f"cluster spec {spec!r} resolved to "
            f"{type(cluster).__name__}, not a ClusterSpec"
        )
    return cluster


def _shard_engine_spec(engine, shard: int):
    """Per-shard engine spec: tag process pools so each shard gets its
    own warm pool instead of all shards contending for one."""
    if not isinstance(engine, str):
        return engine
    name, kwargs = parse_spec(engine)
    if name.strip().lower() in _PROCESS_ENGINES and "pool_tag" not in kwargs:
        kwargs["pool_tag"] = f"cluster-shard-{shard}"
        return format_spec(name, kwargs)
    return engine


class ShardWorker:
    """One shard: a full TaskService plus its dedicated service thread."""

    def __init__(self, index: int, service: TaskService) -> None:
        self.index = index
        self.service = service
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"repro-shard-{index}"
        )

    def call(self, fn, *args):
        """Run ``fn`` on the shard thread and wait for its result."""
        return self._executor.submit(fn, *args).result()

    def begin(self, fn, *args):
        """Start ``fn`` on the shard thread; returns the future."""
        return self._executor.submit(fn, *args)

    def close_executor(self) -> None:
        self._executor.shutdown(wait=True)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ShardWorker {self.index}>"


class ClusterService:
    """N serve shards, one router, one cache, one ledger (module doc).

    Parameters
    ----------
    config:
        The :class:`~repro.config.RuntimeConfig` every shard's scheduler
        is built from; its ``cluster`` field (when set) shapes the
        cluster, its ``tenants`` field populates every shard.
    tenants:
        Extra tenant specs/instances, merged over ``config.tenants``
        (same contract as :class:`~repro.serve.server.TaskService`).
    cluster:
        Shape override: a :class:`ClusterSpec`, a ``"cluster:..."``
        spec string, or a bare shard count.  Falls back to
        ``config.cluster``, then to the default :class:`ClusterSpec`.
    max_batch / compute_quality:
        Forwarded to every shard's ``TaskService``.
    """

    def __init__(
        self,
        config: RuntimeConfig | None = None,
        tenants: tuple | list = (),
        *,
        cluster=None,
        max_batch: int = 8,
        compute_quality: bool = True,
    ) -> None:
        self.config = (
            config
            if config is not None
            else RuntimeConfig(policy="gtb-max", n_workers=16)
        )
        if cluster is None:
            cluster = self.config.build_cluster()
        self.spec = (
            _resolve_cluster(cluster)
            if cluster is not None
            else ClusterSpec()
        )
        n = self.spec.shards

        # Resolve the tenant roster ONCE; every shard instantiates its
        # own TenantState from the same frozen specs.
        specs: list[TenantSpec] = list(self.config.build_tenants())
        for extra in tenants:
            specs.append(
                extra
                if isinstance(extra, TenantSpec)
                else resolve("tenant", extra)
            )
        if not specs:
            from ..serve.tenants import make_standard_tenant

            specs = [make_standard_tenant()]
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate tenant names in {names}")
        self.tenant_specs: tuple[TenantSpec, ...] = tuple(specs)

        # One registry + recorder for the WHOLE cluster: per-thread
        # counter cells make shard threads write-concurrent, per-shard
        # gauges carry a ``shard`` label, so one scrape reconciles the
        # cluster-wide run.
        self._metrics: MetricsRegistry | None = None
        self._spans: SpanRecorder | None = None
        if obs_enabled():
            self._metrics = MetricsRegistry()
            self._spans = SpanRecorder()

        self.ring = HashRing(range(n), replicas=self.spec.replicas)
        self.cache = ShardedResultCache(
            range(n),
            capacity_per_shard=self.spec.cache_capacity,
            replicas=self.spec.replicas,
            metrics=self._metrics,
        )
        self.ledger = EnergyLedger()
        if self._metrics is not None:
            self.ledger.bind_metrics(self._metrics)
        for spec in specs:
            if spec.budget_j is not None:
                self.ledger.open_account(spec.name, spec.budget_j)

        shard_base = self.config.replace(tenants=None)
        self.shards: list[ShardWorker] = []
        for i in range(n):
            shard_config = shard_base.replace(
                engine=_shard_engine_spec(self.config.engine, i)
            )
            service = TaskService(
                shard_config,
                tenants=specs,
                cache=self.cache.view(i),
                max_batch=max_batch,
                compute_quality=compute_quality,
                metrics=self._metrics,
                spans=self._spans,
                shard=str(i),
            )
            for spec in specs:
                if spec.budget_j is None:
                    continue
                lease = self.ledger.lease(
                    spec.name,
                    i,
                    chunk_j=self.spec.lease_frac * spec.budget_j,
                )
                service.tenants[spec.name].attach_lease(lease)
            self.shards.append(ShardWorker(i, service))

        self._kernels: dict[str, ServableKernel] = {}
        self._rounds = 0
        self._closed = False
        self.run_reports: list | None = None

    # -- routing ---------------------------------------------------------
    def _kernel(self, name: str) -> ServableKernel:
        kernel = self._kernels.get(name)
        if kernel is None:
            kernel = self._kernels[name] = get_servable(name)
        return kernel

    def route(self, request: JobRequest) -> int:
        """The shard this request belongs to.

        Unknown kernels and bad args still route (by tenant/kernel
        alone) so the owning shard's admission path produces the proper
        404/400 report — rejection logic lives in ONE place, the serve
        layer.  Stream frames route by ``(tenant, stream)`` instead of
        content: an ordered frame sequence pins to one shard, so frame
        order, the stream's admission window, and the governor's
        mid-stream degradation all live in one place.
        """
        if request.stream is not None:
            return self.ring.lookup(
                job_key(request.tenant, "\x1estream", request.stream)
            )
        digest = ""
        try:
            digest = self._kernel(request.kernel).digest(request.args)
        except (RegistryError, ConfigError):
            pass
        return self.ring.lookup(
            job_key(request.tenant, request.kernel, digest)
        )

    # -- the ServiceProtocol surface --------------------------------------
    @property
    def pending_jobs(self) -> int:
        return sum(w.service.pending_jobs for w in self.shards)

    @property
    def rounds(self) -> int:
        return self._rounds

    @property
    def tenants(self) -> dict[str, list]:
        """Per-tenant shard states: ``{name: [state_shard0, ...]}``."""
        return {
            spec.name: [
                w.service.tenants[spec.name] for w in self.shards
            ]
            for spec in self.tenant_specs
        }

    def _route_span(self, request: JobRequest):
        """Open the routing span and thread it onto the request.

        The shard's ``serve.job`` span parents under it, so one job
        submitted through the cluster yields a single tree:
        ``cluster.route`` → ``serve.job`` → ``runtime.group``.
        """
        if self._spans is None:
            return None
        span = start_span(
            "cluster.route",
            trace_id=request.trace_id,
            parent_id=request.parent_span,
            tenant=request.tenant,
            job=request.job_id,
        )
        request.trace_id = span.trace_id
        request.parent_span = span.span_id
        return span

    def submit(self, request: JobRequest | dict) -> JobReport:
        """Admit one job on its owning shard (consistent-hash routed)."""
        if self._closed:
            raise SchedulerError("cluster service is closed")
        if isinstance(request, dict):
            request = JobRequest.from_dict(request)
        span = self._route_span(request)
        shard = self.route(request)
        worker = self.shards[shard]
        report = worker.call(worker.service.submit, request)
        if span is not None:
            span.end(self._spans, shard=shard, status=report.status)
        return report

    def submit_anytime(
        self, request: JobRequest | dict, *, on_round=None
    ) -> JobReport:
        """Run one anytime job on its owning shard, synchronously.

        Leases are topped up on that shard first (anytime rounds bypass
        :meth:`flush`, where replenishment normally happens) and the
        ledger is settled after, so cluster-wide budget enforcement and
        parity hold for the iterative shape too.
        """
        if self._closed:
            raise SchedulerError("cluster service is closed")
        if isinstance(request, dict):
            request = JobRequest.from_dict(request)
        span = self._route_span(request)
        shard = self.route(request)
        worker = self.shards[shard]

        def run() -> JobReport:
            for state in worker.service.tenants.values():
                state.replenish()
            return worker.service.submit_anytime(
                request, on_round=on_round
            )

        report = worker.call(run)
        self.ledger.settle_all()
        if span is not None:
            span.end(self._spans, shard=shard, status=report.status)
        return report

    def _shard_round(self, worker: ShardWorker) -> list[JobReport]:
        """One admission round on one shard (runs on its thread)."""
        # Top up every budgeted tenant's lease before the round so the
        # cut-off decision is made against fresh cluster headroom, and
        # governors steer against the quota actually granted.
        for state in worker.service.tenants.values():
            state.replenish()
        return worker.service.flush()

    def flush(self) -> list[JobReport]:
        """One cluster round: every shard flushes concurrently.

        Shards with empty queues still run their (cheap, empty) round
        so lease refills and governor retargets stay in lock-step.
        Settles the ledger afterwards, so ``spent_j`` figures lag
        reality by at most one round.
        """
        if self._closed:
            raise SchedulerError("cluster service is closed")
        futures = [
            w.begin(self._shard_round, w) for w in self.shards
        ]
        reports = list(
            itertools.chain.from_iterable(f.result() for f in futures)
        )
        self.ledger.settle_all()
        if reports:
            self._rounds += 1
        return reports

    def tenant_summary(self, name: str) -> dict:
        """One tenant's cluster-wide digest (counters summed over
        shards, budget figures from the ledger)."""
        states = [w.service.tenants[name] for w in self.shards]
        spec = states[0].spec
        summary = {
            "tenant": name,
            "tier": spec.tier,
            "budget_j": spec.budget_j,
            "spent_j": sum(s.spent_j for s in states),
            "pending": sum(s.pending for s in states),
            "executed": sum(s.executed for s in states),
            "cached": sum(s.cached for s in states),
            "cached_degraded": sum(
                s.cached_degraded for s in states
            ),
            "coalesced": sum(s.coalesced for s in states),
            "rejected": sum(s.rejected for s in states),
            "ratio": min(s.ratio for s in states),
        }
        if spec.budget_j is not None:
            account = self.ledger.account(name)
            summary["ledger_settled_j"] = account.settled_j
            summary["ledger_granted_j"] = account.granted_j
            summary["over_budget"] = all(
                s.over_budget for s in states
            )
        else:
            summary["over_budget"] = False
        return summary

    def stats(self) -> dict:
        """Cluster-wide digest (the gateway's ``stats`` op)."""
        return {
            "cluster": {
                "shards": len(self.shards),
                "replicas": self.spec.replicas,
            },
            # Duck-type parity with TaskService.stats(): callers (the
            # smoke driver, dashboards) read the same top-level keys.
            "rounds": self._rounds,
            "tenants": {
                spec.name: self.tenant_summary(spec.name)
                for spec in self.tenant_specs
            },
            "ledger": self.ledger.to_dict(),
            "cache": self.cache.stats.to_dict(),
            "cache_shards": self.cache.to_dict()["per_shard"],
            "pending_jobs": self.pending_jobs,
            "engine_time_s": self.makespan_s,
            "engine": str(self.config.engine),
            "per_shard": [
                {
                    "shard": w.index,
                    "pending_jobs": w.service.pending_jobs,
                    "rounds": w.service.rounds,
                    "engine_time_s": (
                        w.service.scheduler.engine.master_time
                    ),
                    "data_plane": w.service.data_plane_stats,
                }
                for w in self.shards
            ],
        }

    # -- telemetry --------------------------------------------------------
    @property
    def metrics(self) -> MetricsRegistry | None:
        """The cluster-wide registry (None when telemetry is off)."""
        return self._metrics

    @property
    def span_recorder(self) -> SpanRecorder | None:
        """The cluster-wide span sink (None when telemetry is off)."""
        return self._spans

    def collect(self) -> None:
        """Refresh every sampled gauge: each shard's serve gauges plus
        the ledger's per-lease occupancy."""
        if self._metrics is None:
            return
        for w in self.shards:
            w.service.collect()
        lease_gauge = self._metrics.gauge(
            "repro_ledger_lease_remaining_joules",
            "Unspent Joules held on each shard's energy lease.",
            labels=("tenant", "shard"),
        )
        for lease in self.ledger.to_dict()["leases"]:
            lease_gauge.labels(
                lease["tenant"], str(lease["shard"])
            ).set(lease["remaining_j"])

    def metrics_snapshot(self) -> dict:
        """Stable-JSON snapshot of the cluster-wide registry."""
        if self._metrics is None:
            raise SchedulerError(
                "telemetry is disabled on this cluster (REPRO_OBS=0)"
            )
        self.collect()
        return self._metrics.to_dict()

    def metrics_text(self) -> str:
        """Prometheus text exposition of the cluster-wide registry."""
        if self._metrics is None:
            raise SchedulerError(
                "telemetry is disabled on this cluster (REPRO_OBS=0)"
            )
        self.collect()
        return self._metrics.to_prometheus()

    @property
    def makespan_s(self) -> float:
        """Cluster makespan on the engines' own timelines: the slowest
        shard's clock (virtual seconds on simulated backends — the
        deterministic figure the scaling probe gates)."""
        return max(
            w.service.scheduler.engine.master_time
            for w in self.shards
        )

    # -- lifecycle --------------------------------------------------------
    def close(self):
        """Drain every shard, settle and reclaim the ledger, and return
        the per-shard :class:`~repro.runtime.stats.RunReport` list."""
        if self._closed:
            return self.run_reports
        while self.pending_jobs:
            self.flush()
        futures = [
            w.begin(w.service.close) for w in self.shards
        ]
        self.run_reports = [f.result() for f in futures]
        self.ledger.reclaim()
        for w in self.shards:
            w.close_executor()
        self._closed = True
        return self.run_reports

    def __enter__(self) -> "ClusterService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ClusterService {len(self.shards)} shards "
            f"{len(self.tenant_specs)} tenants>"
        )
