"""The cluster energy ledger: lifetime tenant budgets without a global lock.

A single :class:`~repro.serve.server.TaskService` enforces a tenant's
lifetime Joule budget trivially — one counter, one thread.  A sharded
cluster cannot put that counter behind a per-job lock without serializing
exactly the path sharding is supposed to parallelize.  The EXCESS line of
work this repo draws on (D2.3 power/energy models for *concurrent* data
structures, D2.4 energy-efficient communication abstractions) prescribes
the alternative implemented here: a shared account that shards draw from
in **chunked leases**, so the common path is shard-local arithmetic and
the shared structure is touched only once per lease.

Protocol
--------
* The ledger keeps one :class:`LedgerAccount` per budgeted tenant:
  ``budget_j`` (lifetime), ``granted_j`` (sum of all lease grants) and
  ``settled_j`` (sum of all reported spends).
* Each shard holds one :class:`LedgerLease` per budgeted tenant.  The
  hot path — billing an executed job — is :meth:`LedgerLease.draw`:
  two float adds on shard-local state, no lock.
* Between admission rounds the shard calls :meth:`LedgerLease.ensure`,
  which refills from the ledger (one short critical section) only when
  the local headroom has dropped below ``low_water`` of a chunk.
* :meth:`EnergyLedger.settle` folds a lease's drawn-but-unreported
  Joules into the account; the cluster settles after every round, so
  ``spent_j`` lags reality by at most one round.
* A tenant is cut off when its lease is dry **and** the ledger has no
  headroom left — i.e. within one lease chunk of the true budget, never
  one job late per shard (``tests/cluster/test_ledger.py`` pins the
  overshoot bound).

Because the energy a job *will* cost is only known after it runs, a
lease may overdraw by at most one job; the overdraw is settled against
the account and eats into the next grant, so lifetime accounting stays
exact: after :meth:`EnergyLedger.reclaim`, ``spent_j`` equals the sum of
every shard's measured spend to the float.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from ..runtime.errors import ConfigError

__all__ = ["LedgerAccount", "LedgerLease", "EnergyLedger"]

#: Default lease chunk, as a fraction of the tenant's lifetime budget.
#: 1/16th keeps the worst-case cluster overshoot (one in-flight chunk
#: per shard) far inside the serve layer's accounting noise while still
#: touching the ledger lock only ~16 times per budget lifetime per
#: shard.
DEFAULT_CHUNK_FRAC = 1.0 / 16.0

#: Refill threshold: top the lease up once local headroom falls below
#: this fraction of a chunk.
LOW_WATER_FRAC = 0.5


@dataclass
class LedgerAccount:
    """Cluster-wide energy account of one tenant."""

    tenant: str
    budget_j: float
    #: Joules handed out as leases (monotone).
    granted_j: float = 0.0
    #: Joules reported back as actually spent (monotone).
    settled_j: float = 0.0
    #: Grants returned unspent by :meth:`EnergyLedger.reclaim`.
    reclaimed_j: float = 0.0

    @property
    def headroom_j(self) -> float:
        """Joules still grantable: budget minus outstanding grants."""
        return self.budget_j - self.granted_j + self.reclaimed_j

    def to_dict(self) -> dict:
        return {
            "tenant": self.tenant,
            "budget_j": self.budget_j,
            "granted_j": self.granted_j,
            "settled_j": self.settled_j,
            "reclaimed_j": self.reclaimed_j,
            "headroom_j": self.headroom_j,
        }


@dataclass
class LedgerLease:
    """One shard's local allowance of one tenant's cluster budget.

    ``draw``/``remaining_j`` are touched only by the owning shard's
    worker thread; ``granted_j`` moves only inside the ledger's critical
    section (called from that same thread), so the hot path needs no
    lock of its own.
    """

    tenant: str
    shard: int
    ledger: "EnergyLedger" = field(repr=False)
    chunk_j: float = 0.0
    #: Cumulative grants to this lease (monotone).
    granted_j: float = 0.0
    #: Joules drawn locally against the grants (may overdraw by at most
    #: the last job billed — energy is measured after execution).
    used_j: float = 0.0
    #: Portion of ``used_j`` already folded into the account.
    settled_j: float = 0.0

    @property
    def remaining_j(self) -> float:
        return self.granted_j - self.used_j

    def draw(self, energy_j: float) -> None:
        """Bill one executed job — shard-local, lock-free."""
        self.used_j += energy_j

    def ensure(self) -> bool:
        """Refill if low; returns whether the tenant may keep executing.

        ``False`` means cut off: the lease is dry and the ledger granted
        nothing — the shard should stop admitting fresh execution for
        this tenant (cache and rejection paths stay open).
        """
        if self.remaining_j < LOW_WATER_FRAC * self.chunk_j:
            self.ledger.refill(self)
        return self.remaining_j > 0.0

    @property
    def steer_target_j(self) -> float:
        """The budget a shard's governor should steer toward.

        Quota already granted to this shard plus everything the cluster
        account could still grant.  Optimistic early — several shards
        briefly count the same headroom — but the optimism decays to
        zero as grants drain the account, so by the time a budget binds
        every governor is solving against its true local quota.  (The
        pessimistic alternative, steering against the current chunk
        alone, would over-degrade the first rounds of every run however
        generous the lifetime budget.)
        """
        return self.granted_j + self.ledger.headroom_j(self.tenant)

    @property
    def exhausted(self) -> bool:
        """Read-only cut-off predicate (no refill side effect)."""
        return (
            self.remaining_j <= 0.0
            and self.ledger.headroom_j(self.tenant) <= 0.0
        )

    def to_dict(self) -> dict:
        return {
            "tenant": self.tenant,
            "shard": self.shard,
            "granted_j": self.granted_j,
            "used_j": self.used_j,
            "remaining_j": self.remaining_j,
        }


class EnergyLedger:
    """Cluster-level store of tenant energy accounts (see module doc)."""

    def __init__(self) -> None:
        self._accounts: dict[str, LedgerAccount] = {}
        self._leases: list[LedgerLease] = []
        self._lock = threading.Lock()
        # Telemetry handles; None until bind_metrics wires a registry.
        self._m_grants = None
        self._m_granted_j = None
        self._m_settled_j = None

    def bind_metrics(self, registry) -> None:
        """Wire grant/settle telemetry into a metrics registry."""
        self._m_grants = registry.counter(
            "repro_ledger_grants_total",
            "Lease refills that granted any quota.",
            labels=("tenant",),
        )
        self._m_granted_j = registry.counter(
            "repro_ledger_granted_joules_total",
            "Joules granted to shard leases.",
            labels=("tenant",),
        )
        self._m_settled_j = registry.counter(
            "repro_ledger_settled_joules_total",
            "Joules settled back into tenant accounts.",
            labels=("tenant",),
        )

    # -- accounts --------------------------------------------------------
    def open_account(
        self, tenant: str, budget_j: float
    ) -> LedgerAccount:
        if budget_j <= 0:
            raise ConfigError(
                f"ledger budget must be > 0 J, got {budget_j}"
            )
        with self._lock:
            if tenant in self._accounts:
                raise ConfigError(
                    f"ledger account {tenant!r} already exists"
                )
            account = self._accounts[tenant] = LedgerAccount(
                tenant=tenant, budget_j=budget_j
            )
            return account

    def account(self, tenant: str) -> LedgerAccount:
        try:
            return self._accounts[tenant]
        except KeyError:
            raise ConfigError(
                f"no ledger account for tenant {tenant!r}"
            ) from None

    @property
    def tenants(self) -> list[str]:
        return sorted(self._accounts)

    def headroom_j(self, tenant: str) -> float:
        # A bare read of two floats — GIL-atomic enough for the
        # read-only `exhausted` predicate; admission-critical paths go
        # through refill(), which holds the lock.
        return self.account(tenant).headroom_j

    # -- the lease protocol ----------------------------------------------
    def lease(
        self, tenant: str, shard: int, chunk_j: float | None = None
    ) -> LedgerLease:
        """Open one shard's lease on a tenant account (initially empty;
        the first :meth:`LedgerLease.ensure` pulls the first chunk)."""
        account = self.account(tenant)
        if chunk_j is None:
            chunk_j = DEFAULT_CHUNK_FRAC * account.budget_j
        if chunk_j <= 0:
            raise ConfigError(
                f"lease chunk must be > 0 J, got {chunk_j}"
            )
        lease = LedgerLease(
            tenant=tenant, shard=shard, ledger=self, chunk_j=chunk_j
        )
        with self._lock:
            self._leases.append(lease)
        return lease

    def refill(self, lease: LedgerLease) -> float:
        """Grant up to one chunk; returns the Joules actually granted.

        Settles the lease's unreported spend first, so an overdraw eats
        into this grant instead of inflating the account's headroom.
        """
        with self._lock:
            self._settle_locked(lease)
            account = self.account(lease.tenant)
            shortfall = lease.chunk_j - lease.remaining_j
            grant = max(0.0, min(shortfall, account.headroom_j))
            if grant > 0.0:
                lease.granted_j += grant
                account.granted_j += grant
                if self._m_grants is not None:
                    self._m_grants.labels(lease.tenant).inc()
                    self._m_granted_j.labels(lease.tenant).inc(grant)
            return grant

    def settle(self, lease: LedgerLease) -> float:
        """Fold the lease's unreported spend into the account."""
        with self._lock:
            return self._settle_locked(lease)

    def _settle_locked(self, lease: LedgerLease) -> float:
        # Snapshot once: draws from the shard thread that race this
        # settle are simply picked up by the next one.
        used = lease.used_j
        delta = used - lease.settled_j
        if delta:
            lease.settled_j = used
            self.account(lease.tenant).settled_j += delta
            if self._m_settled_j is not None and delta > 0:
                self._m_settled_j.labels(lease.tenant).inc(delta)
        return delta

    def settle_all(self) -> None:
        with self._lock:
            for lease in self._leases:
                self._settle_locked(lease)

    def reclaim(self) -> None:
        """End of run: settle everything and return unspent grants.

        After this, every account's ``settled_j`` equals the sum of its
        shards' measured spends and ``headroom_j`` reflects only Joules
        truly spent — the invariant the 2 % cluster-parity gate checks.
        """
        with self._lock:
            for lease in self._leases:
                self._settle_locked(lease)
                unspent = lease.granted_j - lease.used_j
                if unspent > 0.0:
                    self.account(lease.tenant).reclaimed_j += unspent
                    # The lease keeps its books (granted stays monotone)
                    # but can no longer cover new draws for free:
                    # mark the reclaimed portion as used so remaining_j
                    # drops to zero.
                    lease.used_j += unspent
                    lease.settled_j += unspent

    # -- reporting -------------------------------------------------------
    def spent_j(self, tenant: str) -> float:
        return self.account(tenant).settled_j

    def to_dict(self) -> dict:
        return {
            "accounts": {
                name: acct.to_dict()
                for name, acct in sorted(self._accounts.items())
            },
            "leases": [
                lease.to_dict()
                for lease in sorted(
                    self._leases, key=lambda l: (l.tenant, l.shard)
                )
            ],
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<EnergyLedger {len(self._accounts)} accounts>"
