"""Declarative experiments: ``repro.run(ExperimentSpec(...))``.

The front door for batch execution.  An :class:`ExperimentSpec` captures
*what to run* — workload, knob value, runtime configuration, repeats —
as plain, JSON-round-trippable data; :func:`run` executes one spec or a
list of them (optionally fanning out across processes) and returns a
:class:`ResultSet` whose rows feed the harness tables and exporters.

    >>> import repro
    >>> spec = repro.ExperimentSpec(
    ...     workload="sobel", param=0.5, small=True,
    ...     config=repro.RuntimeConfig(policy="gtb:buffer_size=16"),
    ... )
    >>> rs = repro.run(spec.sweep(policy=["gtb", "lqh"], n_workers=[4, 16]))
    >>> print(rs.table())

Because specs serialize, sweeps parallelize with ``run(..., parallel=4)``
(component instances cannot cross process boundaries — use registry
spec strings) and persist alongside their results for provenance.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator

from .config import RuntimeConfig, component_name
from .runtime.errors import ConfigError
from .runtime.stats import RunReport

__all__ = ["ExperimentSpec", "ExperimentResult", "ResultSet", "run", "run_one"]

#: Execution modes an ExperimentSpec supports (cf. the harness cells).
MODES = ("tasks", "perforated", "overhead")


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment as plain data.

    Parameters
    ----------
    workload:
        Registered benchmark name (``"sobel"``, ``"kmeans"``, ...; see
        :func:`repro.kernels.base.benchmark_names`).
    param:
        The Table 1 knob (accurate-task ratio, Jacobi's tolerance);
        ``None`` means the workload's native (fully accurate) value.
    mode:
        ``"tasks"`` (significance runtime, default), ``"perforated"``
        (loop-perforation baseline), or ``"overhead"`` (the Figure 4
        probe: uniform significance, ratio 1.0).
    config:
        The :class:`~repro.config.RuntimeConfig` to run under.
    repeats:
        Number of executions; repeat ``r`` runs with ``seed + r``.
    seed:
        Base workload seed.
    small:
        Shrunken workload (seconds instead of minutes).
    """

    workload: str
    param: float | None = None
    mode: str = "tasks"
    config: RuntimeConfig = field(default_factory=RuntimeConfig)
    repeats: int = 1
    seed: int = 2015
    small: bool = False

    def __post_init__(self) -> None:
        if not isinstance(self.workload, str) or not self.workload:
            raise ConfigError(
                f"workload must be a benchmark name, got {self.workload!r}"
            )
        if self.mode not in MODES:
            raise ConfigError(
                f"unknown mode {self.mode!r}; expected one of {MODES}"
            )
        if not isinstance(self.repeats, int) or self.repeats < 1:
            raise ConfigError(
                f"repeats must be an int >= 1, got {self.repeats!r}"
            )
        if not isinstance(self.config, RuntimeConfig):
            raise ConfigError(
                f"config must be a RuntimeConfig, got "
                f"{type(self.config).__name__}"
            )

    # -- derivation ------------------------------------------------------
    def replace(self, **changes: Any) -> "ExperimentSpec":
        return replace(self, **changes)

    def sweep(self, **axes: Iterable[Any]) -> list["ExperimentSpec"]:
        """Cross-product expansion over spec and/or config fields.

        Axis names may be :class:`ExperimentSpec` fields (``param``,
        ``seed``, ...) or :class:`~repro.config.RuntimeConfig` fields
        (``policy``, ``n_workers``, ``engine``, ...); values are
        iterables of settings.  Returns one spec per combination, in
        row-major order of the given axes.

        >>> spec.sweep(policy=["gtb", "lqh"], n_workers=[4, 16])  # 4 specs
        >>> spec.sweep(engine=["simulated", "process"])  # backend matrix
        """
        cfg_fields = {f.name for f in fields(RuntimeConfig)}
        spec_fields = {f.name for f in fields(ExperimentSpec)} - {"config"}
        keys = list(axes)
        for key in keys:
            if key not in cfg_fields and key not in spec_fields:
                raise ConfigError(
                    f"unknown sweep axis {key!r}; expected an "
                    f"ExperimentSpec field {sorted(spec_fields)} or a "
                    f"RuntimeConfig field {sorted(cfg_fields)}"
                )
        values = []
        for key in keys:
            axis = list(axes[key])
            if not axis:
                raise ConfigError(f"sweep axis {key!r} is empty")
            values.append(axis)

        specs: list[ExperimentSpec] = []
        for combo in itertools.product(*values):
            cfg_changes: dict[str, Any] = {}
            spec_changes: dict[str, Any] = {}
            for key, value in zip(keys, combo):
                target = cfg_changes if key in cfg_fields else spec_changes
                target[key] = value
            if cfg_changes:
                spec_changes["config"] = self.config.replace(**cfg_changes)
            specs.append(self.replace(**spec_changes))
        return specs

    # -- serialization ---------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Plain-data form (requires a spec-string-only config)."""
        return {
            "workload": self.workload,
            "param": self.param,
            "mode": self.mode,
            "config": self.config.to_dict(),
            "repeats": self.repeats,
            "seed": self.seed,
            "small": self.small,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ExperimentSpec":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(
                f"unknown ExperimentSpec keys {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        payload = dict(data)
        if isinstance(payload.get("config"), dict):
            payload["config"] = RuntimeConfig.from_dict(payload["config"])
        return cls(**payload)


@dataclass
class ExperimentResult:
    """Measured outcome of one (spec, repeat) execution."""

    spec: ExperimentSpec
    repeat: int
    seed: int
    makespan_s: float
    energy_j: float
    quality_metric: str
    quality_value: float
    tasks_total: int
    accurate: int
    approximate: int
    dropped: int
    report: RunReport | None = field(default=None, repr=False)
    output: Any = field(default=None, repr=False)

    def to_row(self) -> dict[str, Any]:
        """Flat dictionary row for tables/CSV/JSON."""
        cfg = self.spec.config
        return {
            "workload": self.spec.workload,
            "mode": self.spec.mode,
            "param": self.spec.param,
            "policy": component_name(cfg.policy, "accurate"),
            "engine": component_name(cfg.engine, "simulated"),
            "n_workers": cfg.n_workers,
            "small": self.spec.small,
            "repeat": self.repeat,
            "seed": self.seed,
            "makespan_s": self.makespan_s,
            "energy_j": self.energy_j,
            "quality_metric": self.quality_metric,
            "quality_value": self.quality_value,
            "tasks_total": self.tasks_total,
            "accurate": self.accurate,
            "approximate": self.approximate,
            "dropped": self.dropped,
        }


class ResultSet:
    """Ordered collection of :class:`ExperimentResult` rows.

    The contract with the harness: :meth:`to_rows` yields the flat
    dictionaries its exporters and tables consume.
    """

    def __init__(self, results: Iterable[ExperimentResult]) -> None:
        self.results: list[ExperimentResult] = list(results)

    # -- container protocol ---------------------------------------------
    def __iter__(self) -> Iterator[ExperimentResult]:
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return ResultSet(self.results[index])
        return self.results[index]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ResultSet: {len(self.results)} results>"

    # -- transforms ------------------------------------------------------
    def filter(
        self,
        predicate: Callable[[ExperimentResult], bool] | None = None,
        **eq: Any,
    ) -> "ResultSet":
        """Subset by a predicate and/or row-field equality tests."""

        def keep(res: ExperimentResult) -> bool:
            if predicate is not None and not predicate(res):
                return False
            row = res.to_row()
            return all(row.get(k) == v for k, v in eq.items())

        return ResultSet(r for r in self.results if keep(r))

    def best(self, key: str = "energy_j") -> ExperimentResult:
        """The result minimizing a row field (ties: first)."""
        if not self.results:
            raise ValueError("empty ResultSet has no best result")
        return min(self.results, key=lambda r: r.to_row()[key])

    # -- export ----------------------------------------------------------
    def to_rows(self) -> list[dict[str, Any]]:
        return [r.to_row() for r in self.results]

    def to_json(self, path: str | Path | None = None) -> str:
        text = json.dumps(self.to_rows(), indent=2, sort_keys=True)
        if path is not None:
            Path(path).write_text(text)
        return text

    def table(self) -> str:
        """Aligned ASCII table (same renderer as the harness)."""
        from .harness.report import format_table

        headers = [
            "workload", "mode", "policy", "engine", "workers", "param",
            "rep", "time (s)", "energy (J)", "quality", "acc/apx/drop",
        ]
        rows = []
        for row in self.to_rows():
            rows.append(
                [
                    row["workload"],
                    row["mode"],
                    row["policy"],
                    row["engine"],
                    row["n_workers"],
                    "native" if row["param"] is None else row["param"],
                    row["repeat"],
                    row["makespan_s"],
                    row["energy_j"],
                    f"{row['quality_metric']}={row['quality_value']:.4g}",
                    f"{row['accurate']}/{row['approximate']}"
                    f"/{row['dropped']}",
                ]
            )
        return format_table(headers, rows)


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def _execute(
    spec: ExperimentSpec,
    repeat: int,
    seed: int,
    keep_output: bool = False,
) -> ExperimentResult:
    """Run one (spec, repeat) cell in-process."""
    from .harness.experiment import NATIVE_PARAMS, reference_output
    from .kernels.base import get_benchmark
    from .runtime.scheduler import Scheduler

    bench = get_benchmark(spec.workload, small=spec.small)
    inputs = bench.build_input(seed)
    reference = reference_output(bench, seed)
    param = (
        spec.param
        if spec.param is not None
        else NATIVE_PARAMS[bench.name.lower()]
    )

    sched = Scheduler(config=spec.config)
    if spec.mode == "perforated":
        output = bench.run_perforated(sched, inputs, param)
    elif spec.mode == "overhead":
        output = bench.run_overhead_probe(sched, inputs)
    else:
        output = bench.run_tasks(sched, inputs, param)
    report = sched.finish()
    quality = bench.quality(reference, output)

    return ExperimentResult(
        spec=spec,
        repeat=repeat,
        seed=seed,
        makespan_s=report.makespan_s,
        energy_j=report.energy_j,
        quality_metric=quality.metric,
        quality_value=quality.value,
        tasks_total=report.tasks_total,
        accurate=report.accurate_tasks,
        approximate=report.approximate_tasks,
        dropped=report.dropped_tasks,
        report=report,
        output=output if keep_output else None,
    )


def _run_payload(payload: tuple[dict, int, int]) -> dict[str, Any]:
    """Process-pool worker: execute a serialized spec, return its row."""
    spec_dict, repeat, seed = payload
    result = _execute(ExperimentSpec.from_dict(spec_dict), repeat, seed)
    return result.to_row()


def run_one(
    spec: ExperimentSpec,
    *,
    repeat: int = 0,
    seed: int | None = None,
    keep_output: bool = False,
) -> ExperimentResult:
    """Execute a single (spec, repeat) cell in-process.

    The harness builds its per-cell measurements on this; :func:`run`
    is the batch front end.
    """
    return _execute(
        spec,
        repeat,
        spec.seed + repeat if seed is None else seed,
        keep_output=keep_output,
    )


def run(
    spec: ExperimentSpec | Iterable[ExperimentSpec],
    *,
    parallel: int | None = None,
    keep_output: bool = False,
) -> ResultSet:
    """Execute one spec or a sweep; return a :class:`ResultSet`.

    ``parallel=N`` fans the (spec × repeat) jobs out over ``N`` worker
    processes — every config must then use registry spec strings (so it
    serializes), and the returned results carry flat measurements only
    (``report``/``output`` are ``None``).  In-process runs keep the full
    :class:`~repro.runtime.stats.RunReport` per result.
    """
    specs = (
        [spec] if isinstance(spec, ExperimentSpec) else list(spec)
    )
    for s in specs:
        if not isinstance(s, ExperimentSpec):
            raise ConfigError(
                f"run() expects ExperimentSpec(s), got {type(s).__name__}"
            )
    jobs = [
        (s, r, s.seed + r) for s in specs for r in range(s.repeats)
    ]

    if parallel is not None and parallel > 1 and len(jobs) > 1:
        # One warm fan-out pool per width, shared across run() calls
        # (and with process-engine cells of the same width) instead of
        # a fresh pool per sweep — see repro.runtime.pool.
        from concurrent.futures.process import BrokenProcessPool

        from .runtime.pool import discard_shared_pool, shared_process_pool

        payloads = [(s.to_dict(), r, seed) for s, r, seed in jobs]
        pool = shared_process_pool(parallel)
        try:
            rows = list(pool.map(_run_payload, payloads))
        except BrokenProcessPool:
            # Evict the corpse so the next sweep gets a fresh pool
            # instead of failing instantly forever.
            discard_shared_pool(parallel)
            raise
        results = []
        for (s, r, seed), row in zip(jobs, rows):
            results.append(
                ExperimentResult(
                    spec=s,
                    repeat=r,
                    seed=seed,
                    makespan_s=row["makespan_s"],
                    energy_j=row["energy_j"],
                    quality_metric=row["quality_metric"],
                    quality_value=row["quality_value"],
                    tasks_total=row["tasks_total"],
                    accurate=row["accurate"],
                    approximate=row["approximate"],
                    dropped=row["dropped"],
                )
            )
        return ResultSet(results)

    return ResultSet(
        _execute(s, r, seed, keep_output=keep_output)
        for s, r, seed in jobs
    )
