"""Programming model: the decorator/context form of the paper's pragmas.

=====================================  =================================
Paper construct                        API equivalent
=====================================  =================================
``#pragma omp task significant(e)``    ``@sig_task(significance=...)`` /
``approxfun(g) label(L) in(a) out(b)`` call-site keyword overrides
``#pragma omp taskwait label/on/ratio`` :func:`taskwait`
``tpc_init_group``                     :meth:`Runtime.init_group`
runtime instance                       ``with Runtime(...) as rt:``
=====================================  =================================
"""

from ..runtime.task import DataRef, TaskCost, ref, refs
from .context import Runtime, current_runtime, has_runtime, taskwait
from .task import TaskFunction, sig_task

__all__ = [
    "Runtime",
    "current_runtime",
    "has_runtime",
    "taskwait",
    "sig_task",
    "TaskFunction",
    "ref",
    "refs",
    "DataRef",
    "TaskCost",
]
