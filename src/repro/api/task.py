"""``@sig_task`` — the decorator form of ``#pragma omp task``.

The paper annotates a call site::

    #pragma omp task label(sobel) in(img) out(res) \
            significant((i%9 + 1)/10.0) approxfun(sbl_task_appr)
    sbl_task(res, img, i);

The decorator equivalent attaches the static clauses to the function and
lets the dynamic ones (``significant`` is an *expression* over the call
arguments) be supplied either per call or as clause callables evaluated
against the call arguments::

    @sig_task(label="sobel",
              approxfun=sbl_task_appr,
              significance=lambda res, img, i: (i % 9 + 1) / 10.0,
              in_=lambda res, img, i: [img],
              out=lambda res, img, i: [ref(res, region=i)])
    def sbl_task(res, img, i): ...

    sbl_task(res, img, i)                       # spawns a task
    sbl_task(res, img, i, significance=0.9)     # per-call override
    sbl_task.plain(res, img, i)                 # bypass: direct call

Calling a decorated function with no active :class:`Runtime` executes
the accurate body directly — annotated code degrades gracefully to
ordinary Python, the same way pragma-annotated C compiles to serial code
when the pragmas are ignored.
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Iterable

from ..runtime.task import Task, TaskCost
from .context import current_runtime, has_runtime

__all__ = ["sig_task", "TaskFunction"]

#: Keywords reserved for clause overrides at call sites.
_CLAUSE_KEYS = ("significance", "in_", "out", "cost", "label", "approxfun")


def _evaluate(clause: Any, args: tuple, kwargs: dict) -> Any:
    """Resolve a clause: callables are evaluated over the call args."""
    if callable(clause) and not isinstance(clause, TaskCost):
        return clause(*args, **kwargs)
    return clause


class TaskFunction:
    """A function annotated with task clauses; calling it spawns a task."""

    def __init__(
        self,
        fn: Callable[..., Any],
        *,
        significance: float | Callable[..., float] = 1.0,
        approxfun: Callable[..., Any] | None = None,
        label: str | None = None,
        in_: Iterable | Callable[..., Iterable] = (),
        out: Iterable | Callable[..., Iterable] = (),
        cost: TaskCost | Callable[..., TaskCost] | None = None,
    ) -> None:
        functools.update_wrapper(self, fn)
        self.fn = fn
        self.clauses = dict(
            significance=significance,
            approxfun=approxfun,
            label=label,
            in_=in_,
            out=out,
            cost=cost,
        )

    # ------------------------------------------------------------------
    def __call__(self, *args: Any, **kwargs: Any) -> Task | Any:
        """Spawn the task in the ambient runtime (or run directly)."""
        overrides = {
            k: kwargs.pop(k) for k in _CLAUSE_KEYS if k in kwargs
        }
        if not has_runtime():
            return self.fn(*args, **kwargs)
        merged = {**self.clauses, **overrides}
        return current_runtime().spawn(
            self.fn,
            *args,
            significance=_evaluate(merged["significance"], args, kwargs),
            approxfun=merged["approxfun"],
            label=merged["label"],
            in_=tuple(_evaluate(merged["in_"], args, kwargs)),
            out=tuple(_evaluate(merged["out"], args, kwargs)),
            cost=_evaluate(merged["cost"], args, kwargs),
            **kwargs,
        )

    def map(self, args_list: Iterable, **overrides: Any) -> Any:
        """Spawn one task per element through the batched fast path.

        ``args_list`` yields one positional-argument tuple per task
        (bare non-tuple elements are wrapped); clause callables are
        evaluated per element exactly as for single calls, but the
        whole iteration space goes through
        :meth:`repro.runtime.scheduler.Scheduler.spawn_many` — one
        policy/dependence/engine pass instead of one per task::

            sbl_task.map((res, img, i) for i in range(1, h - 1))

        Returns the list of spawned :class:`~repro.runtime.task.Task`
        descriptors; with no active :class:`Runtime`, runs the accurate
        body per element and returns the list of results (the same
        graceful degradation as single calls).
        """
        clause_overrides = {
            k: overrides.pop(k) for k in _CLAUSE_KEYS if k in overrides
        }
        if not has_runtime():
            return [
                self.fn(
                    *(a if isinstance(a, tuple) else (a,)), **overrides
                )
                for a in args_list
            ]
        merged = {**self.clauses, **clause_overrides}
        return current_runtime().spawn_many(
            self.fn,
            args_list,
            significance=merged["significance"],
            approxfun=merged["approxfun"],
            label=merged["label"],
            in_=merged["in_"],
            out=merged["out"],
            cost=merged["cost"],
            kwargs=overrides or None,
        )

    def plain(self, *args: Any, **kwargs: Any) -> Any:
        """Run the accurate body directly, never spawning."""
        return self.fn(*args, **kwargs)

    def approx(self, *args: Any, **kwargs: Any) -> Any:
        """Run the approximate body directly (for testing/examples)."""
        approxfun = self.clauses["approxfun"]
        if approxfun is None:
            return None
        return approxfun(*args, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<TaskFunction {getattr(self.fn, '__name__', '?')} "
            f"label={self.clauses['label']!r}>"
        )


def sig_task(
    fn: Callable[..., Any] | None = None,
    *,
    significance: float | Callable[..., float] = 1.0,
    approxfun: Callable[..., Any] | None = None,
    label: str | None = None,
    in_: Iterable | Callable[..., Iterable] = (),
    out: Iterable | Callable[..., Iterable] = (),
    cost: TaskCost | Callable[..., TaskCost] | None = None,
) -> Any:
    """Decorator: mark a function as a significance-annotated task body.

    May be used bare (``@sig_task``) or with clauses
    (``@sig_task(label=..., approxfun=...)``); see the module docstring
    for clause semantics.
    """

    def wrap(f: Callable[..., Any]) -> TaskFunction:
        return TaskFunction(
            f,
            significance=significance,
            approxfun=approxfun,
            label=label,
            in_=in_,
            out=out,
            cost=cost,
        )

    if fn is not None:
        return wrap(fn)
    return wrap
