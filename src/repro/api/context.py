"""Runtime context: which scheduler do pragma-style calls target?

The paper's pragmas are lowered to runtime calls against an ambient
runtime instance.  In Python we reproduce that ambience with a
context-local "current runtime": a :class:`Runtime` (context manager)
registers itself on entry, and module-level operations like
:func:`taskwait` or decorated task calls resolve it implicitly.

``contextvars`` (not a plain global) keeps nested runtimes and
thread/async contexts well-defined.
"""

from __future__ import annotations

import contextvars
from typing import Any

from ..runtime.errors import SchedulerError
from ..runtime.scheduler import Scheduler
from ..runtime.stats import RunReport

__all__ = ["Runtime", "current_runtime", "has_runtime", "taskwait"]

_current: contextvars.ContextVar["Runtime | None"] = contextvars.ContextVar(
    "repro_current_runtime", default=None
)


class Runtime(Scheduler):
    """A scheduler that installs itself as the ambient runtime.

    Accepts the same fronts as :class:`~repro.runtime.scheduler
    .Scheduler`: a :class:`~repro.config.RuntimeConfig`, registry spec
    strings (``policy="gtb:buffer_size=16"``), or component instances.

    >>> with Runtime(policy="lqh", n_workers=16) as rt:
    ...     rt.init_group("sobel", ratio=0.35)
    ...     for i in range(1, h - 1):
    ...         sobel_row(res, img, i, significance=(i % 9 + 1) / 10)
    ...     taskwait(label="sobel")
    >>> rt.report.energy_j
    """

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self._token: contextvars.Token | None = None
        self.report: RunReport | None = None

    def __enter__(self) -> "Runtime":
        self._token = _current.set(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        try:
            if exc_type is None:
                self.report = self.finish()
        finally:
            if self._token is not None:
                _current.reset(self._token)
                self._token = None


def current_runtime() -> Runtime:
    """The innermost active :class:`Runtime`; raises when absent."""
    rt = _current.get()
    if rt is None:
        raise SchedulerError(
            "no active Runtime: task calls and taskwait() must run "
            "inside a `with Runtime(...)` block"
        )
    return rt


def has_runtime() -> bool:
    """True when a :class:`Runtime` context is active."""
    return _current.get() is not None


def taskwait(
    label: str | None = None,
    on: Any | None = None,
    ratio: float | None = None,
) -> float:
    """``#pragma omp taskwait [label(...)] [on(...)] [ratio(...)]``.

    Operates on the ambient runtime; see
    :meth:`repro.runtime.scheduler.Scheduler.taskwait`.
    """
    return current_runtime().taskwait(label=label, on=on, ratio=ratio)
