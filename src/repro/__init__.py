"""repro — significance-aware energy-efficient task computing.

A production-quality Python reproduction of *"A Programming Model and
Runtime System for Significance-Aware Energy-Efficient Computing"*
(Vassiliadis et al., PPoPP 2015).

Quickstart::

    from repro import Runtime, sig_task, taskwait, TaskCost
    from repro.runtime.policies import GlobalTaskBuffering

    @sig_task(label="work", approxfun=lambda x: x, cost=TaskCost(1e6, 1e5))
    def heavy(x):
        return x * x

    with Runtime(policy=GlobalTaskBuffering(16), n_workers=16) as rt:
        rt.init_group("work", ratio=0.5)
        for i in range(100):
            heavy(i, significance=(i % 9 + 1) / 10)
        taskwait(label="work")
    print(rt.report.summary())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured reproduction results.
"""

from .api import (
    DataRef,
    Runtime,
    TaskCost,
    TaskFunction,
    current_runtime,
    has_runtime,
    ref,
    refs,
    sig_task,
    taskwait,
)
from .energy import XEON_E5_2650, EnergyReport, MachineModel
from .runtime import (
    ExecutionKind,
    ReproError,
    RunReport,
    Scheduler,
    Task,
)
from .runtime.policies import (
    GlobalTaskBuffering,
    LocalQueueHistory,
    OraclePolicy,
    SignificanceAgnostic,
    gtb_max_buffer,
    make_policy,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # programming model
    "Runtime",
    "sig_task",
    "TaskFunction",
    "taskwait",
    "current_runtime",
    "has_runtime",
    "ref",
    "refs",
    "DataRef",
    "TaskCost",
    # runtime
    "Scheduler",
    "Task",
    "ExecutionKind",
    "RunReport",
    "ReproError",
    # policies
    "GlobalTaskBuffering",
    "gtb_max_buffer",
    "LocalQueueHistory",
    "SignificanceAgnostic",
    "OraclePolicy",
    "make_policy",
    # energy
    "MachineModel",
    "XEON_E5_2650",
    "EnergyReport",
]
