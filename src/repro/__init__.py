"""repro — significance-aware energy-efficient task computing.

A production-quality Python reproduction of *"A Programming Model and
Runtime System for Significance-Aware Energy-Efficient Computing"*
(Vassiliadis et al., PPoPP 2015).

Quickstart (see README.md for the full tour)::

    from repro import Runtime, sig_task, taskwait, TaskCost

    @sig_task(label="work", approxfun=lambda x: x, cost=TaskCost(1e6, 1e5))
    def heavy(x):
        return x * x

    with Runtime(policy="gtb:buffer_size=16", n_workers=16) as rt:
        rt.init_group("work", ratio=0.5)
        for i in range(100):
            heavy(i, significance=(i % 9 + 1) / 10)
        taskwait(label="work")
    print(rt.report.summary())

Batch experiments are declarative::

    import repro

    spec = repro.ExperimentSpec(
        workload="sobel", param=0.5, small=True,
        config=repro.RuntimeConfig(policy="gtb", n_workers=16),
    )
    results = repro.run(spec.sweep(policy=["gtb", "lqh"]))
    print(results.table())

Components (policies, engines, cost models, machine models) live in
:mod:`repro.registry` and are addressable by serializable spec strings
(``"gtb:buffer_size=16"``, ``"threaded"``); register your own with
``@repro.register("policy", "my-policy")``.
"""

from .api import (
    DataRef,
    Runtime,
    TaskCost,
    TaskFunction,
    current_runtime,
    has_runtime,
    ref,
    refs,
    sig_task,
    taskwait,
)
from .config import RuntimeConfig
from .energy import XEON_E5_2650, EnergyReport, MachineModel
from .registry import available, register, resolve
from .runtime import (
    ExecutionKind,
    ReproError,
    RunReport,
    Scheduler,
    Task,
)
from .runtime.policies import (
    GlobalTaskBuffering,
    LocalQueueHistory,
    OraclePolicy,
    SignificanceAgnostic,
    gtb_max_buffer,
    make_policy,
)
from . import faults as _faults  # noqa: F401  (registers the faulty engine)
from .experiment import ExperimentResult, ExperimentSpec, ResultSet, run
from .tuning import EnergyBudgetGovernor  # also registers "governor"
from .serve import (  # registers "tenant" + "servable" families
    JobReport,
    JobRequest,
    LocalGateway,
    TaskService,
    TenantSpec,
)

__version__ = "1.2.0"

__all__ = [
    "__version__",
    # programming model
    "Runtime",
    "sig_task",
    "TaskFunction",
    "taskwait",
    "current_runtime",
    "has_runtime",
    "ref",
    "refs",
    "DataRef",
    "TaskCost",
    # configuration / registry front door
    "RuntimeConfig",
    "register",
    "resolve",
    "available",
    # declarative experiments
    "ExperimentSpec",
    "ExperimentResult",
    "ResultSet",
    "run",
    # runtime
    "Scheduler",
    "Task",
    "ExecutionKind",
    "RunReport",
    "ReproError",
    # policies
    "GlobalTaskBuffering",
    "gtb_max_buffer",
    "LocalQueueHistory",
    "SignificanceAgnostic",
    "OraclePolicy",
    "make_policy",
    # energy
    "MachineModel",
    "XEON_E5_2650",
    "EnergyReport",
    # online control
    "EnergyBudgetGovernor",
    # serving layer
    "TaskService",
    "LocalGateway",
    "JobRequest",
    "JobReport",
    "TenantSpec",
]
